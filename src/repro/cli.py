"""Command-line interface to the CrypText reproduction.

The deployed CrypText is driven from a web GUI; an open-source library
release needs the equivalent one-shot commands.  The CLI exposes the four
paper functions plus database construction and persistence::

    cryptext-repro build --posts 1500 --out ./db          # build + save the dictionary
    cryptext-repro lookup democrats vaccine --db ./db      # Look Up (§III-B)
    cryptext-repro normalize "the demokrats push the vacc1ne" --db ./db
    cryptext-repro perturb "the democrats support the vaccine" --ratio 0.5 --db ./db
    cryptext-repro listen vaccine --posts 1500             # Social Listening (§III-E)
    cryptext-repro batch normalize --input docs.jsonl      # batch engine over JSONL
    cryptext-repro stats --db ./db

Every command can either load a previously built dictionary (``--db DIR``)
or build one on the fly from the synthetic corpus (``--posts N --seed S``).
Output is plain text by default or JSON with ``--json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from . import __version__
from .core.pipeline import CrypText
from .datasets import build_social_corpus, corpus_texts
from .errors import CrypTextError, SnapshotError
from .social import SocialListener, SocialPlatform
from .storage import SNAPSHOT_FILE_NAME, dump_collection, load_collection
from .viz import build_word_cloud

#: File name used inside a ``--db`` directory for the token collection.
DB_FILE_NAME = "tokens.jsonl"


# --------------------------------------------------------------------------- #
# system construction helpers
# --------------------------------------------------------------------------- #
def _build_system(args: argparse.Namespace, train_scorer: bool = True) -> CrypText:
    """Build or load the CrypText system an invocation should run against.

    A ``--db`` directory that contains a warm-start snapshot hydrates the
    *whole durability state* — base snapshot, delta chain, and the WAL
    tail past it — via ``recover()``, so a database maintained by a
    scheduler-driven service is never served stale by a one-shot command
    (and ``snapshot save --db`` extends the real chain instead of
    rewriting a stale base over it).  A missing, corrupt, or stale
    snapshot silently falls back to the plain JSONL load followed by lazy
    recompilation, so old databases keep working unchanged.
    """
    if getattr(args, "db", None):
        db_dir = Path(args.db)
        snapshot_path = db_dir / SNAPSHOT_FILE_NAME
        db_path = db_dir / DB_FILE_NAME
        from .storage.snapshot import SNAPSHOT_MANIFEST_NAME, sharded_snapshot_dir

        system = CrypText.empty(seed_lexicon=False)
        has_sharded = (
            sharded_snapshot_dir(snapshot_path) / SNAPSHOT_MANIFEST_NAME
        ).is_file()
        if snapshot_path.exists() or has_sharded:
            report = system.recover(db_dir)
            if report.loaded:
                return system
            # Unusable snapshot: discard whatever partial WAL replay the
            # recovery attempt applied and fall back to the JSONL dump.
            system = CrypText.empty(seed_lexicon=False)
        if not db_path.exists():
            raise CrypTextError(
                f"no dictionary found at {db_path}; run 'build --out {args.db}' first"
            )
        load_collection(system.dictionary.collection, db_path)
        return system
    posts = build_social_corpus(num_posts=args.posts, seed=args.seed)
    return CrypText.from_corpus(corpus_texts(posts), train_scorer=train_scorer)


def _emit(payload: dict[str, object], args: argparse.Namespace, text_lines: list[str]) -> None:
    """Print either the JSON payload or the human-readable lines."""
    if args.json:
        print(json.dumps(payload, indent=2, ensure_ascii=False, sort_keys=True))
    else:
        for line in text_lines:
            print(line)


# --------------------------------------------------------------------------- #
# subcommands
# --------------------------------------------------------------------------- #
def _cmd_build(args: argparse.Namespace) -> int:
    posts = build_social_corpus(num_posts=args.posts, seed=args.seed)
    system = CrypText.from_corpus(corpus_texts(posts), train_scorer=False)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = dump_collection(system.dictionary.collection, out_dir / DB_FILE_NAME)
    # A rebuild starts a fresh history: journal segments from the previous
    # life of this directory must not replay over the new dictionary (the
    # fresh snapshot records wal_seq=0).
    from .wal import resolve_wal_directory, supersede_wal_segments

    wal_dir = resolve_wal_directory(system.config, out_dir)
    stale_segments = supersede_wal_segments(wal_dir)
    stats = system.stats()
    payload = {
        "written_entries": written,
        "db_path": str(out_dir / DB_FILE_NAME),
        "stats": stats.to_dict(),
    }
    lines = [
        f"built dictionary from {args.posts} synthetic posts (seed {args.seed})",
        f"saved {written} entries to {out_dir / DB_FILE_NAME}",
        f"tokens={stats.total_tokens} unique-sounds(k=1)={stats.unique_keys[1]}",
    ]
    if stale_segments:
        lines.append(
            f"sidelined {stale_segments} stale change-log segment(s) in {wal_dir} "
            f"(renamed *.superseded)"
        )
    from .storage.snapshot import SNAPSHOT_MANIFEST_NAME, sharded_snapshot_dir

    snapshot_path = out_dir / SNAPSHOT_FILE_NAME
    shard_dir = sharded_snapshot_dir(snapshot_path)
    if args.snapshot or system.config.snapshot_on_save:
        report = system.save_snapshot(snapshot_path)
        payload["snapshot"] = report.to_dict()
        lines.append(
            f"saved warm-start snapshot ({report.buckets} buckets, "
            f"{report.families} trie families) to {report.path}"
        )
    elif snapshot_path.exists() or (shard_dir / SNAPSHOT_MANIFEST_NAME).is_file():
        # A rebuild without --snapshot must not leave a stale snapshot (or
        # its delta chain, or a v2 sharded layout) shadowing the fresh JSONL
        # dump (--db loading prefers snapshots).
        from .core.dictionary import PerturbationDictionary
        from .wal.delta import remove_delta_files

        snapshot_path.unlink(missing_ok=True)
        PerturbationDictionary._remove_sharded_layout(shard_dir)
        remove_delta_files(out_dir)
        lines.append(f"removed stale warm-start snapshot {snapshot_path}")
    _emit(payload, args, lines)
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    """The ``snapshot`` subcommand: save / load / info on warm-start snapshots."""
    path = Path(args.file) if args.file else (Path(args.db) / SNAPSHOT_FILE_NAME if args.db else None)
    if path is None:
        raise CrypTextError("snapshot requires --file or --db")
    if args.action == "save":
        system = _build_system(args, train_scorer=False)
        shards = getattr(args, "shards", None)
        if getattr(args, "incremental", False):
            # An incremental save extends the chain last saved into this
            # directory; with no prior save this process knows about, it
            # falls back to a full rewrite (and says so).
            report = system.save_snapshot(path, incremental=True, shards=shards)
        else:
            report = system.save_snapshot(path, shards=shards)
        if report.incremental:
            lines = [
                f"saved delta {report.delta_index or '(none: nothing dirty)'} "
                f"to {report.path}: {report.documents} changed documents, "
                f"{report.buckets} dirty buckets sharing {report.families} trie families"
            ]
        else:
            lines = [
                f"saved snapshot to {report.path}: {report.documents} documents, "
                f"{report.buckets} buckets sharing {report.families} trie families "
                f"(levels {', '.join(map(str, report.levels))})"
            ]
        _emit({"snapshot": report.to_dict()}, args, lines)
        return 0
    if args.action == "load":
        system = CrypText.empty(seed_lexicon=False)
        report = system.load_snapshot(path)
        stats = system.stats()
        _emit(
            {"snapshot": report.to_dict(), "stats": stats.to_dict()},
            args,
            [
                (
                    f"loaded snapshot from {path}: {report.documents} documents, "
                    f"{report.buckets} warm buckets"
                    if report.loaded
                    else f"snapshot unusable ({report.reason}); nothing loaded"
                ),
            ],
        )
        return 0 if report.loaded else 2
    # info: read and validate without building a system.  Resolution is
    # format-aware: a v2 sharded layout beside (or instead of) the v1 file
    # is preferred, exactly like loading.
    from .storage.snapshot import (
        SNAPSHOT_MANIFEST_NAME,
        resolve_snapshot,
        sharded_manifest_info,
        sharded_snapshot_dir,
    )

    try:
        snapshot = resolve_snapshot(path, strict=True)
    except SnapshotError as exc:
        raise CrypTextError(str(exc)) from exc
    payload = {
        "path": str(path),
        "dictionary_version": snapshot.dictionary_version,
        "fingerprint": snapshot.fingerprint,
        "documents": len(snapshot.documents),
        "families": len(snapshot.families),
        "buckets": len(snapshot.buckets),
        "levels": list(snapshot.levels),
    }
    layout_line = ""
    shard_dir = path if path.is_dir() else sharded_snapshot_dir(path)
    if (shard_dir / SNAPSHOT_MANIFEST_NAME).is_file():
        try:
            manifest = sharded_manifest_info(shard_dir)
        except SnapshotError:
            manifest = None
        if manifest is not None:
            shard_table = manifest.get("shards", [])
            total_bytes = sum(
                entry.get("bytes", 0)
                for entry in shard_table
                if isinstance(entry, dict)
            )
            payload["layout"] = {
                "format": "sharded-v2",
                "directory": str(shard_dir),
                "shard_count": manifest.get("shard_count"),
                "bytes": total_bytes,
            }
            layout_line = (
                f" [v2: {manifest.get('shard_count')} shard(s), "
                f"{total_bytes} bytes in {shard_dir}]"
            )
    _emit(
        payload,
        args,
        [
            f"{path}: {len(snapshot.documents)} documents, "
            f"{len(snapshot.buckets)} buckets sharing {len(snapshot.families)} "
            f"trie families, levels {list(snapshot.levels)}, "
            f"fingerprint {snapshot.fingerprint}" + layout_line
        ],
    )
    return 0


def _wal_directory(args: argparse.Namespace) -> Path:
    """Resolve the change-log directory for the ``wal`` subcommand.

    Shares the library-wide precedence rule (explicit override, else
    ``config.wal_dir``, else the ``<db>/wal`` sibling) so ``wal info``
    always reports the same journal recovery would replay.
    """
    from .config import DEFAULT_CONFIG
    from .wal import resolve_wal_directory

    override = getattr(args, "wal_dir", None) or None
    if override is None and not getattr(args, "db", None):
        raise CrypTextError("wal requires --wal-dir or --db")
    return resolve_wal_directory(DEFAULT_CONFIG, args.db or ".", override)


def _cmd_wal(args: argparse.Namespace) -> int:
    """The ``wal`` subcommand: inspect / replay / compact the durability layer."""
    from .errors import WalError
    from .wal import ChangeLog, MaintenancePolicy, MaintenanceScheduler, list_delta_paths

    wal_dir = _wal_directory(args)
    if args.action == "info":
        try:
            stats = ChangeLog.scan(wal_dir)
        except WalError as exc:
            raise CrypTextError(str(exc)) from exc
        payload: dict[str, object] = {"wal": stats.to_dict()}
        lines = [
            f"{stats.directory}: {stats.records} records in {stats.segments} "
            f"segments (seq {stats.first_seq}..{stats.last_seq}, "
            f"{stats.total_bytes} bytes"
            + (f", {stats.torn_bytes} torn tail bytes)" if stats.torn_bytes else ")")
        ]
        if getattr(args, "db", None):
            db_dir = Path(args.db)
            snapshot_path = db_dir / SNAPSHOT_FILE_NAME
            try:
                from .storage.snapshot import resolve_snapshot
                from .wal import read_delta

                base = resolve_snapshot(snapshot_path, strict=True)
                deltas = list_delta_paths(db_dir)
                # Recovery replays past the chain *tip* (the last delta's
                # recorded position), not past the base.
                tip_seq = read_delta(deltas[-1]).wal_seq if deltas else base.wal_seq
                pending = max(0, stats.last_seq - tip_seq)
                payload["chain"] = {
                    "base": str(snapshot_path),
                    "base_wal_seq": base.wal_seq,
                    "tip_wal_seq": tip_seq,
                    "deltas": [str(path) for path in deltas],
                    "replay_pending": pending,
                }
                lines.append(
                    f"chain: base covers seq <= {base.wal_seq}, "
                    f"{len(deltas)} delta(s) extending to seq <= {tip_seq}, "
                    f"{pending} records to replay"
                )
            except SnapshotError as exc:
                payload["chain"] = {"error": str(exc)}
                lines.append(f"chain: no usable snapshot chain ({exc})")
        _emit(payload, args, lines)
        return 0

    if not getattr(args, "db", None):
        raise CrypTextError(f"wal {args.action} requires --db (the snapshot directory)")
    db_dir = Path(args.db)
    system = CrypText.empty(seed_lexicon=False)
    report = system.recover(db_dir, wal_dir=wal_dir)
    stats = system.stats()
    if args.action == "replay":
        payload = {"recovery": report.to_dict(), "stats": stats.to_dict()}
        lines = [
            f"recovered {stats.total_tokens} tokens: snapshot "
            f"{'loaded' if report.loaded else 'missing'} "
            f"({report.deltas_applied} delta(s)), {report.replayed_records} WAL "
            f"records replayed past seq {report.snapshot_wal_seq}"
        ]
        if report.torn_bytes:
            lines.append(f"discarded {report.torn_bytes} torn tail bytes")
        for reason in report.degraded:
            lines.append(f"degraded: {reason}")
        _emit(payload, args, lines)
        return 0
    # compact: recovery above reconstructed the full state; fold it into a
    # fresh full snapshot and drop the WAL segments it covers.
    scheduler = MaintenanceScheduler(
        system.dictionary,
        snapshot_dir=db_dir,
        wal_dir=wal_dir,
        policy=MaintenancePolicy(autosave_interval=None, incremental=False),
    )
    save = scheduler.compact()
    payload = {"recovery": report.to_dict(), "snapshot": save.to_dict()}
    _emit(
        payload,
        args,
        [
            f"compacted {report.deltas_applied} delta(s) + "
            f"{report.replayed_records} WAL records into {save.path} "
            f"({save.documents} documents, {save.buckets} buckets); "
            f"WAL truncated through seq {save.wal_seq}"
        ],
    )
    return 0


def _run_follow_only(args: argparse.Namespace, db_dir: Path, wal_dir: Path) -> int:
    """A single read-only follower worker process (``replica run --follow-only``).

    No leader, no single-writer guard: the worker hydrates from the
    snapshot chain, tails the WAL, and — when ``--status-file`` is given —
    rewrites an atomic JSON heartbeat (pid, applied seq, content
    fingerprint, poll counters) every ``--status-interval`` seconds.  This
    is the worker the :class:`~repro.resilience.ReplicaSupervisor` spawns
    and health-checks; SIGTERM/SIGINT stop it cleanly after a final
    heartbeat.
    """
    import os
    import signal
    import threading
    import time

    from .config import DEFAULT_CONFIG
    from .replication import Follower

    config = DEFAULT_CONFIG
    if getattr(args, "catchup_batch", None):
        config = config.with_overrides(replica_catchup_batch=args.catchup_batch)
    name = getattr(args, "name", None) or f"worker-{os.getpid()}"
    interval = (
        args.poll_interval
        if args.poll_interval is not None
        else config.replica_poll_interval
    )
    status_interval = getattr(args, "status_interval", None) or 0.2
    status_path = (
        Path(args.status_file) if getattr(args, "status_file", None) else None
    )
    follower = Follower(db_dir, wal_dir=wal_dir, config=config, name=name)
    stop = threading.Event()

    def _request_stop(signum: int, frame: object) -> None:
        stop.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, _request_stop)
        except ValueError:  # pragma: no cover - not on the main thread
            pass

    fingerprint = ""
    fingerprint_seq = -1

    def write_status() -> None:
        nonlocal fingerprint, fingerprint_seq
        if status_path is None:
            return
        stats = follower.stats()
        applied = int(stats["applied_seq"])  # type: ignore[arg-type]
        if applied != fingerprint_seq:
            # Fingerprinting hashes the whole dictionary — only pay for it
            # when the applied position moved.
            fingerprint = follower.system.dictionary.content_fingerprint()
            fingerprint_seq = applied
        payload = {
            "pid": os.getpid(),
            "name": name,
            "applied_seq": applied,
            "tokens": stats["tokens"],
            "fingerprint": fingerprint,
            "hydrated": stats["hydrated"],
            "polls": stats["polls"],
            "poll_errors": stats["poll_errors"],
            "throttled_polls": stats["throttled_polls"],
            "updated_at": time.time(),
        }
        tmp = status_path.with_name(status_path.name + ".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, status_path)

    try:
        follower.catch_up()
    except CrypTextError:
        pass  # counted in poll stats; the loop keeps trying
    write_status()
    last_status = time.monotonic()
    next_poll = last_status + interval
    wait = min(interval, status_interval)
    while not stop.is_set():
        stop.wait(wait)
        now = time.monotonic()
        if now >= next_poll:
            follower.poll_safely()
            next_poll = now + interval
        if now - last_status >= status_interval:
            write_status()
            last_status = now
    write_status()
    follower.close()
    return 0


def _cmd_replica(args: argparse.Namespace) -> int:
    """The ``replica`` subcommand: replicated read-scaling operations.

    ``status`` inspects a leader directory read-only: journal position,
    snapshot-chain tip, and how many records a fresh follower would replay.
    ``run`` starts a leader (behind the single-writer guard) plus N
    follower replicas, catches them up, and either reports convergence and
    exits (the default, used by scripts and tests) or keeps serving over
    the asyncio front (``--serve``).  ``run --follow-only`` instead runs a
    single read-only worker (no leader) — see :func:`_run_follow_only`.
    ``supervise`` runs N such workers as real OS processes under a
    restart-with-backoff supervisor.
    """
    from .config import DEFAULT_CONFIG
    from .errors import WalError
    from .wal import ChangeLog, SingleWriterGuard, resolve_wal_directory
    from .wal.delta import resolve_snapshot_chain

    if not getattr(args, "db", None):
        raise CrypTextError("replica requires --db (the leader's snapshot directory)")
    db_dir = Path(args.db)
    wal_dir = resolve_wal_directory(
        DEFAULT_CONFIG, db_dir, getattr(args, "wal_dir", None) or None
    )

    if args.action == "run" and getattr(args, "follow_only", False):
        return _run_follow_only(args, db_dir, wal_dir)

    if args.action == "supervise":
        from .resilience import ReplicaSupervisor

        supervisor = ReplicaSupervisor(
            db_dir,
            wal_dir=wal_dir,
            workers=args.workers,
            poll_interval=args.poll_interval,
            status_interval=args.status_interval,
            catchup_batch=getattr(args, "catchup_batch", None),
        )
        supervisor.start()
        try:
            supervisor.run(rounds=args.rounds, interval=args.check_interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        finally:
            payload = supervisor.status()
            supervisor.stop()
        lines = []
        for member in payload["workers"]:
            heartbeat = member["heartbeat"] or {}
            lines.append(
                f"{member['name']}: pid {member['pid']}, "
                f"{'healthy' if member['healthy'] else 'unhealthy'}, "
                f"applied seq {heartbeat.get('applied_seq', '?')}, "
                f"{member['restarts']} restart(s)"
            )
        _emit({"supervisor": payload}, args, lines)
        return 0

    if args.action == "status":
        payload: dict[str, object] = {"wal_dir": str(wal_dir)}
        lines: list[str] = []
        try:
            wal_stats = ChangeLog.scan(wal_dir)
            payload["wal"] = wal_stats.to_dict()
            leader_seq = wal_stats.last_seq
            lines.append(
                f"journal {wal_dir}: {wal_stats.records} records, "
                f"last seq {wal_stats.last_seq}"
            )
        except WalError as exc:
            payload["wal"] = {"error": str(exc)}
            leader_seq = 0
            lines.append(f"journal {wal_dir}: unreadable ({exc})")
        try:
            chain = resolve_snapshot_chain(db_dir, strict=False)
        except SnapshotError as exc:
            chain = None
            payload["chain"] = {"error": str(exc)}
            lines.append(f"chain: broken ({exc})")
        if chain is not None:
            tip_seq = chain.snapshot.wal_seq
            pending = max(0, leader_seq - tip_seq)
            payload["chain"] = {
                "base": chain.base_path,
                "deltas": chain.deltas_applied,
                "tip_wal_seq": tip_seq,
                "replay_pending": pending,
            }
            lines.append(
                f"chain: base + {chain.deltas_applied} delta(s) covering "
                f"seq <= {tip_seq}; a fresh follower replays {pending} record(s)"
            )
        elif "chain" not in payload:
            payload["chain"] = None
            lines.append(
                f"chain: no usable snapshot in {db_dir}; a fresh follower "
                f"replays the whole journal"
            )
        _emit(payload, args, lines)
        return 0

    # run: leader behind the single-writer guard, N tailing followers.
    from .api import AsyncCrypTextService, CrypTextService
    from .replication import Follower, ReplicaSet

    with SingleWriterGuard(wal_dir):
        leader = CrypText.empty(seed_lexicon=False)
        recovery = leader.recover(db_dir, wal_dir=wal_dir)
        followers = [
            Follower(db_dir, wal_dir=wal_dir, name=f"follower-{index}")
            for index in range(args.followers)
        ]
        replica_set = ReplicaSet(leader, followers)
        try:
            for follower in followers:
                follower.catch_up()
            if args.serve:
                service = CrypTextService(leader, replica_set=replica_set)
                token = service.issue_token("cli")
                front = AsyncCrypTextService(service)

                async def serve() -> None:
                    host, port = await front.start(args.host, args.port)
                    print(f"serving on http://{host}:{port} (token: {token.token})")
                    replica_set.start(args.poll_interval)
                    try:
                        await front.serve_forever()
                    finally:
                        replica_set.stop()
                        await front.stop()

                try:
                    import asyncio

                    asyncio.run(serve())
                except KeyboardInterrupt:  # pragma: no cover - interactive exit
                    pass
                return 0
            status = replica_set.status()
            payload = {"recovery": recovery.to_dict(), "replication": status}
            lines = [
                f"leader recovered {len(leader.dictionary)} tokens "
                f"(wal seq {recovery.wal_seq})"
            ]
            # Per-follower lag in *seconds* comes from the observability
            # gauges (the same series a Prometheus scrape sees), not from a
            # second ad-hoc computation.
            from .obs.adapters import replication_samples

            lag_seconds = {
                sample[3]["follower"]: float(sample[4])
                for sample in replication_samples(replica_set)
                if sample[0] == "cryptext_replication_lag_seconds"
            }
            payload["lag_seconds"] = lag_seconds
            for member in status["followers"]:
                seconds = lag_seconds.get(str(member["name"]))
                behind = (
                    "never synced" if seconds is None else f"{seconds:.3f}s behind"
                )
                lines.append(
                    f"{member['name']}: applied seq {member['applied_seq']}, "
                    f"{member['tokens']} tokens, "
                    f"lag {member['replication_lag_seqs']} seq(s), {behind}"
                )
            converged = all(
                member["applied_seq"] == status["leader_seq"]
                for member in status["followers"]
            )
            lines.append(
                "all followers converged" if converged else "followers still behind"
            )
            _emit(payload, args, lines)
            return 0 if converged else 2
        finally:
            replica_set.close()


def _cmd_metrics(args: argparse.Namespace) -> int:
    """One-shot (or ``--watch``) view of the observability surface.

    Builds/loads the system the same way every other one-shot command does,
    arms the registry for the invocation (a metrics command that reports
    everything disarmed would be useless), and prints either the Prometheus
    exposition text or (``--json``) the registry snapshot.
    """
    import time as _time

    from .obs.adapters import sanitizer_samples, system_samples
    from .obs.expose import render_text
    from .obs.registry import OBS

    OBS.arm()
    system = _build_system(args, train_scorer=False)

    def collected():
        extra = system_samples(system)
        extra.extend(sanitizer_samples())
        return OBS.collect(extra)

    if args.watch:
        try:
            while True:
                print("\x1b[2J\x1b[H", end="")  # clear the terminal between frames
                print(render_text(collected()), end="", flush=True)
                _time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0
    if args.json:
        print(
            json.dumps(
                OBS.snapshot(system_samples(system)),
                indent=2,
                ensure_ascii=False,
                sort_keys=True,
            )
        )
    else:
        print(render_text(collected()), end="")
    return 0


def _cmd_lookup(args: argparse.Namespace) -> int:
    system = _build_system(args, train_scorer=False)
    payload: dict[str, object] = {}
    lines: list[str] = []
    for word in args.words:
        result = system.look_up(
            word,
            phonetic_level=args.phonetic_level,
            max_edit_distance=args.edit_distance,
            case_sensitive=not args.case_insensitive,
            use_transpositions=args.transpositions,
        )
        payload[word] = result.to_dict()
        perturbations = ", ".join(result.perturbation_tokens()[: args.limit]) or "(none)"
        lines.append(f"{word}: {perturbations}")
        if args.word_cloud and result.matches:
            cloud = build_word_cloud(result, max_items=args.limit)
            payload[f"{word}_word_cloud"] = [item.to_dict() for item in cloud]
    _emit(payload, args, lines)
    return 0


def _cmd_normalize(args: argparse.Namespace) -> int:
    system = _build_system(args)
    result = system.normalize(args.text)
    payload = result.to_dict()
    lines = [result.normalized_text]
    if args.explain:
        for correction in result.perturbed_corrections:
            lines.append(
                f"  {correction.original!r} -> {correction.corrected!r} "
                f"({correction.category.value})"
            )
    _emit(payload, args, lines)
    return 0


def _cmd_perturb(args: argparse.Namespace) -> int:
    system = _build_system(args, train_scorer=False)
    outcome = system.perturber.perturb(
        args.text, ratio=args.ratio, fill_target=args.fill_target
    )
    payload = outcome.to_dict()
    lines = [outcome.perturbed_text]
    if args.explain:
        for replacement in outcome.replacements:
            lines.append(
                f"  {replacement.original!r} -> {replacement.perturbed!r} "
                f"({replacement.category.value})"
            )
    _emit(payload, args, lines)
    return 0


def _cmd_listen(args: argparse.Namespace) -> int:
    posts = build_social_corpus(num_posts=args.posts, seed=args.seed)
    system = CrypText.from_corpus(corpus_texts(posts), train_scorer=False)
    platform = SocialPlatform(args.platform)
    platform.ingest_posts(posts, only_matching_platform=True)
    listener = SocialListener(platform, system.lookup_engine)
    usage = listener.monitor_keyword(args.keyword)
    payload = usage.to_dict()
    lines = [
        f"keyword {args.keyword!r} on {args.platform}: {usage.total_posts} posts, "
        f"{usage.perturbed_posts} reached via perturbations "
        f"({usage.perturbed_share:.0%})",
    ]
    for point in usage.timeline:
        lines.append(
            f"  {point.date}: {point.frequency:>3} posts  "
            f"sentiment {point.average_sentiment:+.2f}  "
            f"negative {point.negative_share:.0%}"
        )
    _emit(payload, args, lines)
    return 0


def _iter_jsonl_values(path: str, field: str):
    """Yield one string per JSONL line of ``path`` (``-`` reads stdin).

    Each line is either a JSON object holding ``field`` or a bare JSON
    string; blank lines are skipped.
    """
    if path == "-":
        handle = sys.stdin
    else:
        try:
            handle = open(path, "r", encoding="utf-8")
        except OSError as exc:
            raise CrypTextError(f"cannot read {path}: {exc}") from exc
    try:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CrypTextError(f"{path}:{line_number}: invalid JSON: {exc}") from exc
            if isinstance(payload, str):
                yield payload
            elif isinstance(payload, dict) and field in payload:
                yield str(payload[field])
            else:
                raise CrypTextError(
                    f"{path}:{line_number}: expected a JSON string or an object "
                    f"with a {field!r} field"
                )
    finally:
        if handle is not sys.stdin:
            handle.close()


def _cmd_batch(args: argparse.Namespace) -> int:
    system = _build_system(args, train_scorer=args.mode == "normalize")
    engine = system.make_batch_engine(
        num_shards=args.shards,
        chunk_size=args.chunk_size,
        max_in_flight=args.max_in_flight,
    )
    if args.output is None:
        out = sys.stdout
    else:
        try:
            out = open(args.output, "w", encoding="utf-8")
        except OSError as exc:
            raise CrypTextError(f"cannot write {args.output}: {exc}") from exc
    processed = 0
    try:
        if args.mode == "lookup":
            field = "query"
            stream = engine.stream_look_up(_iter_jsonl_values(args.input, field))
            for result in stream:
                record = {
                    "query": result.query,
                    "soundex_key": result.soundex_key,
                    "perturbations": list(result.perturbation_tokens()[: args.limit]),
                }
                print(json.dumps(record, ensure_ascii=False), file=out)
                processed += 1
        else:
            field = "text"
            stream = engine.stream_normalize(_iter_jsonl_values(args.input, field))
            for result in stream:
                record = {
                    "text": result.original_text,
                    "normalized": result.normalized_text,
                    "num_corrected": result.num_corrected,
                }
                print(json.dumps(record, ensure_ascii=False), file=out)
                processed += 1
    finally:
        if out is not sys.stdout:
            out.close()
    print(
        f"processed {processed} documents "
        f"({args.mode}, {args.shards} shards, chunk size {args.chunk_size})",
        file=sys.stderr,
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .analysis import LOCK_RANKS
    from .analysis.lint import lint_paths
    from .analysis.sanitizer import active

    rule_names = None
    if args.rules:
        rule_names = [part.strip() for part in args.rules.split(",") if part.strip()]
    paths = [Path(path) for path in args.paths] or None
    try:
        findings = lint_paths(paths, rule_names)
    except ValueError as exc:
        raise CrypTextError(str(exc)) from exc
    payload: dict[str, object] = {
        "findings": [
            {"rule": f.rule, "path": f.path, "line": f.line, "message": f.message}
            for f in findings
        ],
        "count": len(findings),
    }
    lines = [finding.describe() for finding in findings]
    lines.append(f"lint: {len(findings)} finding(s)")
    if args.show_hierarchy:
        payload["hierarchy"] = dict(LOCK_RANKS)
        lines.append("lock hierarchy (outermost first):")
        lines.extend(
            f"  {rank:4d}  {name}" for name, rank in sorted(LOCK_RANKS.items(), key=lambda kv: kv[1])
        )
    sanitizer = active()
    if sanitizer is not None:
        payload["sanitizer"] = {"violations": len(sanitizer.report().violations)}
        lines.append(sanitizer.report().describe())
    _emit(payload, args, lines)
    return 1 if findings else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    system = _build_system(args, train_scorer=False)
    stats = system.stats()
    payload = {"stats": stats.to_dict()}
    lines = [
        f"raw tokens          : {stats.total_tokens}",
        f"total occurrences   : {stats.total_occurrences}",
        f"lexicon tokens      : {stats.lexicon_tokens}",
        f"perturbation tokens : {stats.perturbation_tokens}",
    ]
    for level, count in sorted(stats.unique_keys.items()):
        lines.append(f"unique sounds (k={level}) : {count}")
    _emit(payload, args, lines)
    return 0


# --------------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------------- #
def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--db", help="directory of a dictionary saved by the 'build' command"
    )
    parser.add_argument(
        "--posts", type=int, default=800, help="synthetic corpus size when no --db is given"
    )
    parser.add_argument("--seed", type=int, default=20230116, help="corpus seed")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="cryptext-repro",
        description="CrypText reproduction: human-written text perturbations in the wild",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    parser.add_argument("--json", action="store_true", help="emit JSON instead of text")
    commands = parser.add_subparsers(dest="command", required=True)

    build_cmd = commands.add_parser("build", help="build and save the token dictionary")
    build_cmd.add_argument("--posts", type=int, default=1500)
    build_cmd.add_argument("--seed", type=int, default=20230116)
    build_cmd.add_argument("--out", required=True, help="output directory")
    build_cmd.add_argument(
        "--snapshot",
        action="store_true",
        help="also write a warm-start snapshot (compiled tries) next to the JSONL dump",
    )
    build_cmd.set_defaults(handler=_cmd_build)

    lookup_cmd = commands.add_parser("lookup", help="Look Up perturbations of words")
    lookup_cmd.add_argument("words", nargs="+")
    lookup_cmd.add_argument("--phonetic-level", type=int, default=None)
    lookup_cmd.add_argument("--edit-distance", type=int, default=None)
    lookup_cmd.add_argument("--case-insensitive", action="store_true")
    lookup_cmd.add_argument(
        "--transpositions",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="override the distance policy: --transpositions counts an adjacent "
        "swap as one edit (OSA), --no-transpositions as two (plain Levenshtein); "
        "omitted keeps the configured policy",
    )
    lookup_cmd.add_argument("--limit", type=int, default=15)
    lookup_cmd.add_argument("--word-cloud", action="store_true", help="include word-cloud data")
    _add_source_arguments(lookup_cmd)
    lookup_cmd.set_defaults(handler=_cmd_lookup)

    snapshot_cmd = commands.add_parser(
        "snapshot",
        help="save, load, or inspect a warm-start snapshot (dictionary + compiled tries)",
    )
    snapshot_cmd.add_argument("action", choices=("save", "load", "info"))
    snapshot_cmd.add_argument(
        "--file", help=f"snapshot path (default: <--db>/{SNAPSHOT_FILE_NAME})"
    )
    snapshot_cmd.add_argument(
        "--incremental",
        action="store_true",
        help="(save only) write a delta covering only the buckets changed "
        "since the last save into this directory, instead of a full rewrite",
    )
    snapshot_cmd.add_argument(
        "--shards",
        type=int,
        default=None,
        help="(save only) write the v2 sharded, mmap-friendly layout with "
        "this many shard files (overrides config.snapshot_shards; 0 forces "
        "the v1 single file)",
    )
    _add_source_arguments(snapshot_cmd)
    snapshot_cmd.set_defaults(handler=_cmd_snapshot)

    wal_cmd = commands.add_parser(
        "wal",
        help="inspect, replay, or compact the durability layer (change log + deltas)",
    )
    wal_cmd.add_argument(
        "action",
        choices=("info", "replay", "compact"),
        help="info: segment/record/torn-tail summary; replay: rebuild the "
        "dictionary from snapshot chain + WAL tail and report; compact: fold "
        "deltas and the WAL tail into one full snapshot and truncate the log",
    )
    wal_cmd.add_argument(
        "--db", help="snapshot-chain directory (wal defaults to <db>/wal)"
    )
    wal_cmd.add_argument("--wal-dir", help="change-log directory override")
    wal_cmd.set_defaults(handler=_cmd_wal)

    replica_cmd = commands.add_parser(
        "replica",
        help="replicated read scaling: run follower replicas or inspect lag",
    )
    replica_cmd.add_argument(
        "action",
        choices=("run", "status", "supervise"),
        help="run: leader (single-writer guarded) + N WAL-tailing followers, "
        "converge and report, or keep serving with --serve; status: journal "
        "position, chain tip, and pending replay for a fresh follower; "
        "supervise: N read-only follower worker processes under a "
        "restart-with-backoff supervisor",
    )
    replica_cmd.add_argument(
        "--db", help="leader snapshot-chain directory (wal defaults to <db>/wal)"
    )
    replica_cmd.add_argument("--wal-dir", help="change-log directory override")
    replica_cmd.add_argument(
        "--followers", type=int, default=2, help="number of follower replicas (run)"
    )
    replica_cmd.add_argument(
        "--poll-interval",
        type=float,
        default=None,
        help="follower poll interval in seconds (default: config value)",
    )
    replica_cmd.add_argument(
        "--serve",
        action="store_true",
        help="keep running and serve the asyncio HTTP front over the replica set",
    )
    replica_cmd.add_argument("--host", default="127.0.0.1", help="bind host (--serve)")
    replica_cmd.add_argument(
        "--port", type=int, default=0, help="bind port, 0 picks a free one (--serve)"
    )
    replica_cmd.add_argument(
        "--follow-only",
        action="store_true",
        help="run a single read-only follower worker (no leader, no writer "
        "guard) — the process the supervisor spawns",
    )
    replica_cmd.add_argument(
        "--name", default=None, help="worker name in heartbeats (--follow-only)"
    )
    replica_cmd.add_argument(
        "--status-file",
        default=None,
        help="atomic JSON heartbeat path (--follow-only)",
    )
    replica_cmd.add_argument(
        "--status-interval",
        type=float,
        default=0.2,
        help="seconds between heartbeat writes (--follow-only / supervise)",
    )
    replica_cmd.add_argument(
        "--catchup-batch",
        type=int,
        default=None,
        help="max WAL records applied per poll (backpressure; default: config)",
    )
    replica_cmd.add_argument(
        "--workers", type=int, default=2, help="worker processes (supervise)"
    )
    replica_cmd.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="supervision checks before exiting (supervise; default: run "
        "until interrupted)",
    )
    replica_cmd.add_argument(
        "--check-interval",
        type=float,
        default=0.5,
        help="seconds between supervision checks (supervise)",
    )
    replica_cmd.add_argument(
        "--json",
        action="store_true",
        # SUPPRESS keeps this subparser flag from clobbering a globally
        # passed --json with its own False default: absent here means
        # "whatever the top-level parser decided".
        default=argparse.SUPPRESS,
        help="emit JSON (same as the global --json, placed after the subcommand)",
    )
    replica_cmd.set_defaults(handler=_cmd_replica)

    metrics_cmd = commands.add_parser(
        "metrics",
        help="print the Prometheus exposition text for a system (or --json)",
    )
    metrics_cmd.add_argument(
        "--watch",
        action="store_true",
        help="refresh the exposition text in place until interrupted",
    )
    metrics_cmd.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between --watch refreshes",
    )
    _add_source_arguments(metrics_cmd)
    metrics_cmd.set_defaults(handler=_cmd_metrics)

    normalize_cmd = commands.add_parser("normalize", help="detect and de-perturb a text")
    normalize_cmd.add_argument("text")
    normalize_cmd.add_argument("--explain", action="store_true")
    _add_source_arguments(normalize_cmd)
    normalize_cmd.set_defaults(handler=_cmd_normalize)

    perturb_cmd = commands.add_parser("perturb", help="perturb a text at a ratio")
    perturb_cmd.add_argument("text")
    perturb_cmd.add_argument("--ratio", type=float, default=0.25)
    perturb_cmd.add_argument("--fill-target", action="store_true")
    perturb_cmd.add_argument("--explain", action="store_true")
    _add_source_arguments(perturb_cmd)
    perturb_cmd.set_defaults(handler=_cmd_perturb)

    listen_cmd = commands.add_parser("listen", help="monitor a keyword's perturbations")
    listen_cmd.add_argument("keyword")
    listen_cmd.add_argument("--platform", default="twitter", choices=("twitter", "reddit"))
    listen_cmd.add_argument("--posts", type=int, default=1200)
    listen_cmd.add_argument("--seed", type=int, default=20230116)
    listen_cmd.set_defaults(handler=_cmd_listen)

    batch_cmd = commands.add_parser(
        "batch",
        help="run Look Up or Normalization over a JSONL stream via the batch engine",
    )
    batch_cmd.add_argument("mode", choices=("lookup", "normalize"))
    batch_cmd.add_argument(
        "--input",
        required=True,
        help="JSONL file of {'query': ...} / {'text': ...} objects (or bare "
        "strings); '-' reads stdin",
    )
    batch_cmd.add_argument("--output", help="output JSONL path (default: stdout)")
    batch_cmd.add_argument("--shards", type=int, default=4, help="phonetic index shards")
    batch_cmd.add_argument("--chunk-size", type=int, default=256, help="documents per chunk")
    batch_cmd.add_argument(
        "--max-in-flight", type=int, default=4, help="bound on concurrently processed chunks"
    )
    batch_cmd.add_argument("--limit", type=int, default=15, help="perturbations kept per query")
    _add_source_arguments(batch_cmd)
    batch_cmd.set_defaults(handler=_cmd_batch)

    stats_cmd = commands.add_parser("stats", help="dictionary statistics")
    _add_source_arguments(stats_cmd)
    stats_cmd.set_defaults(handler=_cmd_stats)

    check_cmd = commands.add_parser(
        "check",
        help="run the project-aware concurrency lint pass (exit 1 on findings)",
    )
    check_cmd.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    check_cmd.add_argument("--rules", help="comma-separated subset of rules to run")
    check_cmd.add_argument(
        "--show-hierarchy",
        action="store_true",
        help="also print the declared lock-order hierarchy",
    )
    check_cmd.set_defaults(handler=_cmd_check)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    from .analysis.sanitizer import maybe_enable_from_env
    from .obs.registry import maybe_arm_from_env
    from .resilience.faults import install_env_faults

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        # Before any system construction: locks built after this point come
        # out tracked when CRYPTEXT_SANITIZE=1 is set.
        if maybe_enable_from_env() is not None:
            print("sanitizer: lock-order sanitizer enabled", file=sys.stderr)
        if maybe_arm_from_env():
            print(
                "observability: metrics registry armed via CRYPTEXT_OBS=1",
                file=sys.stderr,
            )
        armed = install_env_faults()
        if armed:
            print(
                f"chaos: armed fault point(s) from CRYPTEXT_FAULTS: "
                f"{', '.join(armed)}",
                file=sys.stderr,
            )
        return int(args.handler(args))
    except CrypTextError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
