"""Batch throughput engine: Look Up / Normalization / Perturbation at scale.

The deployed CrypText is an always-on service: bulk API requests, a social
listener expanding whole watch-lists, and a crawler enriching the database
around the clock.  :class:`BatchEngine` is the throughput layer those paths
run on.  It combines

* the **sharded phonetic index** (:mod:`repro.batch.sharded_index`) with
  shard-parallel candidate retrieval on a worker pool,
* **query deduplication** — repeated tokens across a batch are resolved
  once — plus **per-token memoization** of Normalization candidate retrieval
  layered on :class:`~repro.storage.TTLCache`,
* **backpressure-aware streaming** — chunked generators with a bounded
  number of in-flight batches — for the crawler / social-listening path,
* **shard-scoped enrichment**: learning new texts refreshes only the shards
  whose sound buckets changed and invalidates exactly the cached queries
  over those sounds.

Batch results are guaranteed identical to N sequential single calls: both
paths share :meth:`LookupEngine.build_result` and the normalizer's candidate
logic, and all batch methods preserve input order.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from ..analysis.sanitizer import tracked_rlock
from ..config import CrypTextConfig
from ..obs.registry import OBS
from ..core.dictionary import PerturbationDictionary
from ..core.lookup import LookupEngine, LookupResult, sound_tag
from ..core.matcher import CompiledBucket
from ..core.normalizer import NormalizationResult, Normalizer
from ..core.perturber import PerturbationOutcome, Perturber
from ..errors import CrypTextError
from ..lm import CoherencyScorer
from ..storage import TTLCache, make_key
from .sharded_index import ShardedPhoneticIndex

_MISSING = object()


@dataclass(frozen=True)
class EnrichmentReport:
    """What one enrichment pass changed (returned by :meth:`BatchEngine.enrich`)."""

    added: int
    changed_sounds: frozenset[tuple[int, str]]
    shards_touched: frozenset[int]
    invalidated_queries: int

    def to_dict(self) -> dict[str, object]:
        """Serialize for crawler reports and monitoring exports."""
        return {
            "added": self.added,
            "num_changed_sounds": len(self.changed_sounds),
            "shards_touched": sorted(self.shards_touched),
            "invalidated_queries": self.invalidated_queries,
        }


class _MemoizedNormalizer(Normalizer):
    """A :class:`Normalizer` whose candidate retrieval is memoized and sharded.

    Candidate retrieval — bucket match plus distance filtering — is
    context-free (only the coherency *ranking* looks at neighbors), so a
    token seen a thousand times across a batch pays the retrieval cost once.
    Buckets come from the sharded index — compiled per shard, so every
    deduped token of a batch matches against one warm trie — and are ranked
    by the base class's shared logic (identical results to the sequential
    path by construction); memo entries are tagged with their sound key so
    enrichment invalidates exactly the tokens whose buckets changed, and
    stores are skipped when an enrichment ran mid-retrieval (epoch guard).
    """

    def __init__(
        self,
        dictionary: PerturbationDictionary,
        index: ShardedPhoneticIndex,
        memo: TTLCache,
        scorer: CoherencyScorer | None,
        config: CrypTextConfig,
        epoch_source: Callable[[], int],
    ) -> None:
        super().__init__(dictionary, scorer=scorer, config=config)
        self._index = index
        self._memo = memo
        self._epoch_source = epoch_source

    def _candidate_entries(self, soundex_key: str):
        return self._index.english_bucket(soundex_key, self.config.phonetic_level)

    def _compiled_candidate_bucket(self, soundex_key: str) -> CompiledBucket:
        return self._index.compiled_bucket(soundex_key, self.config.phonetic_level)

    def _retrieve_candidates(self, token_text: str) -> list[tuple[str, int, int]]:
        level = self.config.phonetic_level
        memo_key = make_key(
            "normalize.candidates",
            token_text,
            level,
            self.config.edit_distance,
            self.config.use_transpositions,
        )
        cached = self._memo.get(memo_key, _MISSING)
        if cached is not _MISSING:
            return cached
        epoch = self._epoch_source()
        candidates = super()._retrieve_candidates(token_text)
        key = self._encoder.encode_or_none(token_text)
        tags = (sound_tag(level, key),) if key is not None else ()
        self._memo.set_if(
            memo_key, candidates, lambda: epoch == self._epoch_source(), tags=tags
        )
        return candidates


def _chunked(items: Iterable[str], size: int) -> Iterator[list[str]]:
    chunk: list[str] = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


class BatchEngine:
    """Runs the paper's functions over batches and streams of documents.

    Parameters
    ----------
    dictionary:
        The token database (source of truth for the sharded index).
    lookup_engine:
        Engine whose result builder and query cache the batch path shares; a
        private one is created when omitted.  Sharing the ``CrypText``
        facade's engine means batch and per-call traffic populate one cache.
    config:
        Hyper-parameters; defaults to the dictionary's configuration.
    scorer:
        Coherency scorer for Normalization ranking (optional).
    perturber:
        Perturbation sampler used by :meth:`perturb_batch`; a private seeded
        one is created when omitted.
    num_shards:
        Partition count of the phonetic index.
    chunk_size:
        Default documents-per-chunk for the streaming methods.
    max_in_flight:
        Default bound on concurrently processed chunks in the streaming
        methods (the backpressure knob: an unbounded reader can be at most
        ``max_in_flight * chunk_size`` documents ahead of the consumer).
    memo_cache:
        Cache for per-token Normalization memoization (a private
        :class:`TTLCache` is created when omitted).
    """

    def __init__(
        self,
        dictionary: PerturbationDictionary,
        lookup_engine: LookupEngine | None = None,
        config: CrypTextConfig | None = None,
        scorer: CoherencyScorer | None = None,
        perturber: Perturber | None = None,
        num_shards: int = 4,
        chunk_size: int = 256,
        max_in_flight: int = 4,
        memo_cache: TTLCache | None = None,
    ) -> None:
        if chunk_size < 1:
            raise CrypTextError(f"chunk_size must be >= 1, got {chunk_size}")
        if max_in_flight < 1:
            raise CrypTextError(f"max_in_flight must be >= 1, got {max_in_flight}")
        self.dictionary = dictionary
        self.config = config if config is not None else dictionary.config
        self.lookup_engine = (
            lookup_engine
            if lookup_engine is not None
            else LookupEngine(dictionary, config=self.config)
        )
        self.index = ShardedPhoneticIndex(dictionary, num_shards=num_shards)
        self.num_shards = num_shards
        self.chunk_size = chunk_size
        self.max_in_flight = max_in_flight
        self.memo = (
            memo_cache
            if memo_cache is not None
            else TTLCache(
                max_entries=self.config.cache_max_entries,
                default_ttl=self.config.cache_ttl_seconds,
            )
        )
        # The dictionary's mutation counter is bumped on every write, before
        # any cache invalidation runs — so a retrieval that straddles a write
        # sees the moved epoch and skips storing its (possibly stale) result.
        self.normalizer = _MemoizedNormalizer(
            dictionary, self.index, self.memo, scorer, self.config,
            epoch_source=lambda: dictionary.version,
        )
        self.perturber = (
            perturber
            if perturber is not None
            else Perturber(self.lookup_engine, config=self.config)
        )
        #: Minimum number of distinct sound keys in a batch before bucket
        #: retrieval fans out to the worker pool (below it, pool overhead
        #: exceeds the probe cost).
        self.parallel_threshold = 8
        # Cooperative maintenance hook (attach_maintenance): streaming
        # generators tick it between chunks, so a long-running stream
        # refreshes snapshots on schedule while the shard pool keeps
        # serving — saves never pause the shards.
        self._maintenance = None
        self._enrich_lock = tracked_rlock("batch.enrich")
        # One long-lived pool for shard-parallel bucket retrieval; creating
        # an executor per batch would pay thread spawn/join on every chunk
        # of a stream.  Threads start lazily on first use.
        self._shard_pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(
                max_workers=num_shards, thread_name_prefix="cryptext-shard"
            )
            if num_shards > 1
            else None
        )
        # Dictionary writes that bypass this engine (a crawler holding only
        # the dictionary, direct add_token calls) must still drop the
        # memoized candidates and cached queries over the changed sounds.
        dictionary.register_observer(self)

    # ------------------------------------------------------------------ #
    # Look Up
    # ------------------------------------------------------------------ #
    def look_up_batch(
        self,
        queries: Sequence[str],
        phonetic_level: int | None = None,
        max_edit_distance: int | None = None,
        case_sensitive: bool = True,
        canonical_distance: bool = False,
        use_transpositions: bool | None = None,
    ) -> list[LookupResult]:
        """Look Up every query of a batch; results preserve input order.

        Duplicate queries are resolved once, cache hits are served from the
        shared query cache, and the remaining misses retrieve their sound
        buckets shard-parallel before being built with the exact logic of the
        sequential path — so ``look_up_batch(qs)[i]`` equals
        ``look_up(qs[i])`` for every ``i``.  ``use_transpositions``
        overrides the distance policy for the whole batch exactly as the
        per-query parameter does on :meth:`LookupEngine.look_up` (it is part
        of every cache key consulted and populated here).
        """
        if OBS.armed:
            with OBS.span("batch.lookup"):
                return self._look_up_batch(
                    queries, phonetic_level, max_edit_distance, case_sensitive,
                    canonical_distance, use_transpositions,
                )
        return self._look_up_batch(
            queries, phonetic_level, max_edit_distance, case_sensitive,
            canonical_distance, use_transpositions,
        )

    def _look_up_batch(
        self,
        queries: Sequence[str],
        phonetic_level: int | None,
        max_edit_distance: int | None,
        case_sensitive: bool,
        canonical_distance: bool,
        use_transpositions: bool | None,
    ) -> list[LookupResult]:
        queries = list(queries)
        level = self.config.phonetic_level if phonetic_level is None else phonetic_level
        distance = (
            self.config.edit_distance if max_edit_distance is None else max_edit_distance
        )
        engine = self.lookup_engine
        resolved: dict[str, LookupResult] = {}
        misses: list[str] = []
        for query in dict.fromkeys(queries):
            if engine.cache is not None:
                cache_key = engine.cache_key(
                    query, level, distance, case_sensitive, canonical_distance,
                    use_transpositions,
                )
                hit = engine.cache.get(cache_key, default=None)
                if hit is not None:
                    resolved[query] = hit
                    continue
            misses.append(query)
        if misses:
            encoder = self.dictionary.encoder(level)
            sound_keys = {query: encoder.encode_or_none(query) for query in misses}
            wanted = {(level, key) for key in sound_keys.values() if key is not None}
            # Same stale-write guard as the sequential look_up: buckets read
            # before an enrichment's invalidation must not be re-cached after
            # it (the results are still returned, just not stored).
            epoch = engine.epoch
            buckets = self._fetch_buckets(
                wanted, compiled=self.config.compiled_buckets
            )
            for query in misses:
                key = sound_keys[query]
                bucket = buckets.get((level, key), ()) if key is not None else ()
                result = engine.build_result(
                    query, level, distance, case_sensitive, canonical_distance, key,
                    bucket, use_transpositions=use_transpositions,
                )
                engine.cache_result(
                    result, case_sensitive, canonical_distance, epoch=epoch,
                    use_transpositions=use_transpositions,
                )
                resolved[query] = result
        return [resolved[query] for query in queries]

    def warm_from_snapshot(self, source=None, level: int | None = None):
        """Hydrate the sharded index's compiled buckets from a snapshot.

        ``source`` is a snapshot path or a loaded
        :class:`~repro.storage.snapshot.Snapshot`; when omitted the
        configured ``config.snapshot_dir`` is used.  Returns the
        :class:`~repro.core.dictionary.SnapshotLoadReport` —
        ``loaded=False`` with a ``reason`` means the snapshot was unusable
        (corrupt, stale fingerprint) and the shards were warmed the normal
        recompiling way instead, so the engine is ready to serve either way.
        """
        if source is None:
            from ..storage.snapshot import SNAPSHOT_FILE_NAME
            from pathlib import Path

            if self.config.snapshot_dir is None:
                raise CrypTextError(
                    "no snapshot source given and config.snapshot_dir is not set"
                )
            source = Path(self.config.snapshot_dir) / SNAPSHOT_FILE_NAME
        return self.index.warm(level=level, from_snapshot=source)

    def _fetch_buckets(self, wanted: set[tuple[int, str]], compiled: bool = False):
        if self._shard_pool is not None and len(wanted) >= self.parallel_threshold:
            return self.index.buckets(
                wanted, executor=self._shard_pool, compiled=compiled
            )
        return self.index.buckets(wanted, compiled=compiled)

    def close(self) -> None:
        """Shut down the shard worker pool (idempotent).

        Optional — an unclosed engine's idle threads are reaped at
        interpreter exit — but long-running services cycling engines should
        close retired ones.
        """
        if self._shard_pool is not None:
            self._shard_pool.shutdown(wait=False)
            self._shard_pool = None

    def look_up_many(
        self,
        queries: Sequence[str],
        phonetic_level: int | None = None,
        max_edit_distance: int | None = None,
        case_sensitive: bool = True,
        use_transpositions: bool | None = None,
    ) -> dict[str, LookupResult]:
        """Dict-shaped bulk Look Up (drop-in for ``LookupEngine.look_up_many``)."""
        results = self.look_up_batch(
            queries,
            phonetic_level=phonetic_level,
            max_edit_distance=max_edit_distance,
            case_sensitive=case_sensitive,
            use_transpositions=use_transpositions,
        )
        return {query: result for query, result in zip(queries, results)}

    def stream_look_up(
        self,
        queries: Iterable[str],
        chunk_size: int | None = None,
        max_in_flight: int | None = None,
        phonetic_level: int | None = None,
        max_edit_distance: int | None = None,
        case_sensitive: bool = True,
        use_transpositions: bool | None = None,
    ) -> Iterator[LookupResult]:
        """Stream Look Up results over an unbounded query iterable, in order.

        The iterable is consumed in chunks of ``chunk_size``; at most
        ``max_in_flight`` chunks are being resolved at once, so a slow
        consumer exerts backpressure on the producer instead of the engine
        buffering the whole stream (the crawler / social-listening path).
        """
        yield from self._stream(
            queries,
            lambda chunk: self.look_up_batch(
                chunk,
                phonetic_level=phonetic_level,
                max_edit_distance=max_edit_distance,
                case_sensitive=case_sensitive,
                use_transpositions=use_transpositions,
            ),
            chunk_size,
            max_in_flight,
        )

    # ------------------------------------------------------------------ #
    # Normalization
    # ------------------------------------------------------------------ #
    def normalize_batch(self, texts: Sequence[str]) -> list[NormalizationResult]:
        """Normalize every document of a batch; results preserve input order.

        Duplicate documents are normalized once; across distinct documents
        every repeated token shares one memoized candidate retrieval, so the
        per-document cost degenerates to ranking.  Sound buckets for the
        batch's unique tokens are prefetched shard-parallel.
        """
        if OBS.armed:
            with OBS.span("batch.normalize"):
                return self._normalize_batch(texts)
        return self._normalize_batch(texts)

    def _normalize_batch(self, texts: Sequence[str]) -> list[NormalizationResult]:
        texts = list(texts)
        unique = list(dict.fromkeys(texts))
        self._prefetch_normalization_buckets(unique)
        resolved = {text: self.normalizer.normalize(text) for text in unique}
        return [resolved[text] for text in texts]

    def _prefetch_normalization_buckets(self, texts: Sequence[str]) -> None:
        """Warm the sharded index for every unique token of ``texts``."""
        level = self.config.phonetic_level
        encoder = self.dictionary.encoder(level)
        tokens = {
            token.text
            for text in texts
            for token in self.normalizer.tokenizer.word_tokens(text)
        }
        wanted = set()
        for token_text in tokens:
            key = encoder.encode_or_none(token_text)
            if key is not None:
                wanted.add((level, key))
        if wanted:
            # Compile while prefetching when the compiled path is on, so the
            # normalizer's per-token retrievals hit warm per-shard tries.
            self._fetch_buckets(wanted, compiled=self.config.compiled_buckets)

    def stream_normalize(
        self,
        texts: Iterable[str],
        chunk_size: int | None = None,
        max_in_flight: int | None = None,
    ) -> Iterator[NormalizationResult]:
        """Stream Normalization results over a document iterable, in order.

        Chunked and bounded exactly like :meth:`stream_look_up`.
        """
        yield from self._stream(
            texts, self.normalize_batch, chunk_size, max_in_flight
        )

    # ------------------------------------------------------------------ #
    # Perturbation
    # ------------------------------------------------------------------ #
    def perturb_batch(
        self,
        texts: Sequence[str],
        ratio: float | None = None,
        case_sensitive: bool | None = None,
    ) -> list[PerturbationOutcome]:
        """Perturb every document of a batch; results preserve input order.

        Sampling is stochastic, so documents are *not* deduplicated — two
        occurrences of the same text may legitimately perturb differently —
        but every per-token Look Up inside the sampler is served from the
        shared query cache the batch path keeps warm.
        """
        return [
            self.perturber.perturb(text, ratio=ratio, case_sensitive=case_sensitive)
            for text in texts
        ]

    # ------------------------------------------------------------------ #
    # enrichment (crawler / social-listening write path)
    # ------------------------------------------------------------------ #
    def enrich(self, texts: Iterable[str], source: str = "stream") -> EnrichmentReport:
        """Add ``texts`` to the dictionary and resynchronize, shard-scoped.

        Only the shards whose sound buckets changed are refreshed, and only
        cached queries/memoized tokens over those sounds are invalidated;
        everything else stays warm.
        """
        changed: set[tuple[int, str]] = set()
        added = self.dictionary.add_corpus(texts, source=source, changed_keys=changed)
        shards, invalidated = self.apply_enrichment(changed)
        return EnrichmentReport(
            added=added,
            changed_sounds=frozenset(changed),
            shards_touched=shards,
            invalidated_queries=invalidated,
        )

    def note_changes(self, changed_keys: set[tuple[int, str]]) -> None:
        """Dictionary write notification (the ``ChangeObserver`` hook).

        Fires on *every* dictionary write, including ones that bypass
        :meth:`enrich` — a crawler holding only the dictionary, a direct
        ``add_token`` call — so the memoized normalization candidates and
        the tagged query cache can never go stale behind an out-of-band
        write.  The sharded index keeps itself in sync through its own
        observer.
        """
        self.memo.invalidate_tags(sound_tag(level, key) for level, key in changed_keys)
        self.lookup_engine.invalidate_sounds(changed_keys)

    def apply_enrichment(
        self, changed_keys: Iterable[tuple[int, str]]
    ) -> tuple[frozenset[int], int]:
        """Refresh shards and invalidate caches for ``changed_keys``.

        Returns ``(shards_touched, invalidated_query_count)``.  Called by
        :meth:`enrich` and by ``CrypText.learn_from`` when the dictionary was
        grown outside this engine.
        """
        changed = set(changed_keys)
        if not changed:
            return frozenset(), 0
        with self._enrich_lock:
            shards = self.index.refresh_keys(changed)
            self.memo.invalidate_tags(sound_tag(level, key) for level, key in changed)
            invalidated = self.lookup_engine.invalidate_sounds(changed)
        return shards, invalidated

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def attach_maintenance(self, scheduler) -> None:
        """Tick ``scheduler`` between streamed chunks (cooperative upkeep).

        The streaming generators call
        :meth:`~repro.wal.maintenance.MaintenanceScheduler.tick` each time a
        chunk's results are drained — a cheap no-op until the auto-save
        interval elapses, then an incremental snapshot refresh that runs
        while the shard pool keeps resolving the next chunks.
        """
        self._maintenance = scheduler

    def _tick_maintenance(self) -> None:
        if self._maintenance is not None:
            self._maintenance.tick()

    def _stream(self, items, process, chunk_size, max_in_flight):
        size = self.chunk_size if chunk_size is None else chunk_size
        bound = self.max_in_flight if max_in_flight is None else max_in_flight
        if size < 1:
            raise CrypTextError(f"chunk_size must be >= 1, got {size}")
        if bound < 1:
            raise CrypTextError(f"max_in_flight must be >= 1, got {bound}")
        with ThreadPoolExecutor(
            max_workers=bound, thread_name_prefix="cryptext-stream"
        ) as pool:
            in_flight: deque = deque()
            for chunk in _chunked(items, size):
                while len(in_flight) >= bound:
                    yield from in_flight.popleft().result()
                    self._tick_maintenance()
                in_flight.append(pool.submit(process, chunk))
            while in_flight:
                yield from in_flight.popleft().result()
                self._tick_maintenance()

    def stats(self) -> dict[str, object]:
        """Shard layout plus cache/memoization counters (monitoring export).

        ``compiled_buckets`` aggregates the trie-cache counters across the
        shards and the dictionary's own LRU (including trie-family sharing),
        the capacity-tuning view for ``config.cache_max_entries``; its
        ``kernels`` entry totals the per-kernel match counters
        (myers/banded/symspell/linear) for every match this engine's
        dictionary served.
        """
        dictionary_compiled = self.dictionary.compiled_cache_stats()
        return {
            "index": self.index.to_dict(),
            "memo": self.memo.stats.to_dict(),
            "query_cache": (
                self.lookup_engine.cache.stats.to_dict()
                if self.lookup_engine.cache is not None
                else None
            ),
            "compiled_buckets": {
                "shards": self.index.compiled_cache_stats(),
                "dictionary": dictionary_compiled,
                "kernels": dictionary_compiled["kernels"],
            },
            "chunk_size": self.chunk_size,
            "max_in_flight": self.max_in_flight,
            "maintenance": (
                self._maintenance.status() if self._maintenance is not None else None
            ),
        }
