"""Sharded phonetic index: the dictionary's sound buckets split across shards.

The flat :class:`~repro.core.dictionary.PerturbationDictionary` answers every
Look Up with one index probe against a single hash-map.  For batch traffic
(the always-on service path: thousands of documents per request, a crawler
enriching the database concurrently) this module materializes the same sound
buckets as an in-memory index **partitioned into N shards** keyed by a stable
hash of the Soundex code:

* candidate retrieval for a batch groups the queried keys by shard and
  resolves each shard's group on a worker pool (shard-parallel retrieval);
* enrichment touches only the shards whose buckets changed, and reports
  which, so cache invalidation can be scoped to those shards' sounds;
* each shard carries its own lock and version counter, so readers of
  untouched shards never contend with a writer refreshing one bucket.

Bucket contents and ordering are exactly what
:meth:`PerturbationDictionary.tokens_for_key` returns, which is what makes
batch Look Up results byte-identical to the sequential path.
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import Executor
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from ..analysis.sanitizer import tracked_lock, tracked_rlock
from ..core.dictionary import (
    DictionaryEntry,
    PerturbationDictionary,
    SnapshotLoadReport,
)
from ..core.matcher import CompiledBucket, TrieFamilyRegistry
from ..errors import CrypTextError, SnapshotError
from ..storage.snapshot import shard_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..storage.snapshot import Snapshot


# shard_of's canonical definition lives in the storage layer now (imported
# above and re-exported here for its historical callers): the v2 sharded
# snapshot places bucket rows with the same function, so an index shard and
# the snapshot shard holding its keys agree by construction.


@dataclass(frozen=True)
class ShardStats:
    """Size and freshness counters for one shard.

    The ``compiled_*`` fields describe the shard's compiled-bucket LRU —
    hit/miss/eviction counters plus current size — the capacity-tuning
    signal for ``config.cache_max_entries`` under batch workloads.
    """

    shard_id: int
    num_buckets: int
    num_entries: int
    refreshes: int
    compiled_hits: int = 0
    compiled_misses: int = 0
    compiled_evictions: int = 0
    compiled_size: int = 0

    def to_dict(self) -> dict[str, int]:
        """Serialize for monitoring exports and the throughput benchmark."""
        return {
            "shard_id": self.shard_id,
            "num_buckets": self.num_buckets,
            "num_entries": self.num_entries,
            "refreshes": self.refreshes,
            "compiled_hits": self.compiled_hits,
            "compiled_misses": self.compiled_misses,
            "compiled_evictions": self.compiled_evictions,
            "compiled_size": self.compiled_size,
        }


class _Shard:
    """One partition of the phonetic index (buckets + lock + counters)."""

    __slots__ = (
        "buckets",
        "compiled",
        "compiled_max",
        "families",
        "lock",
        "refreshes",
        "compiled_hits",
        "compiled_misses",
        "compiled_evictions",
    )

    def __init__(self, compiled_max: int, families: TrieFamilyRegistry) -> None:
        # (phonetic_level, soundex_key) -> entries in tokens_for_key order
        self.buckets: dict[tuple[int, str], tuple[DictionaryEntry, ...]] = {}
        # Lazily compiled tries over the same buckets, LRU-ordered; dropped
        # whenever the backing bucket is refreshed, so a shard worker serving
        # a batch's deduped queries reuses one trie until the bucket actually
        # changes.  Capped (tries cost several times their entry tuples) — on
        # a paper-scale corpus of 400K+ sound keys an unbounded cache would
        # grow with workload breadth until OOM.
        self.compiled: "OrderedDict[tuple[int, str], CompiledBucket]" = OrderedDict()
        self.compiled_max = compiled_max
        # The dictionary's trie-family registry: a bucket whose token
        # sequence was already compiled — by another level, the dictionary's
        # own cache, or a snapshot hydration — reuses those tries instead of
        # building fresh ones.
        self.families = families
        self.lock = tracked_rlock("shard.bucket")
        self.refreshes = 0
        self.compiled_hits = 0
        self.compiled_misses = 0
        self.compiled_evictions = 0

    def compiled_for(self, bucket_key: tuple[int, str]) -> CompiledBucket:
        """Get-or-compile the bucket's trie (call with :attr:`lock` held).

        Least-recently-used eviction: a hit refreshes the key's recency, so
        the hot buckets of a skewed batch survive a sweep of cold keys.
        """
        compiled = self.compiled.get(bucket_key)
        if compiled is None:
            self.compiled_misses += 1
            while len(self.compiled) >= self.compiled_max:
                self.compiled.popitem(last=False)
                self.compiled_evictions += 1
            entries = self.buckets.get(bucket_key, ())
            compiled = CompiledBucket(entries, family=self.families.family_for(entries))
            self.compiled[bucket_key] = compiled
        else:
            self.compiled_hits += 1
            self.compiled.move_to_end(bucket_key)
        return compiled


class ShardedPhoneticIndex:
    """The dictionary's hash-maps ``H_k``, partitioned across N shards.

    Parameters
    ----------
    dictionary:
        Source of truth.  The index registers itself as a change observer on
        construction, so *every* dictionary write — whether it goes through
        a batch engine, the ``CrypText`` facade, or a direct ``add_token``
        call — lands in a pending set that reads drain before serving.  No
        write path can leave the index permanently stale.
    num_shards:
        Number of partitions.  Throughput scales with shards until the
        per-shard bucket groups become trivially small.
    """

    def __init__(self, dictionary: PerturbationDictionary, num_shards: int = 4) -> None:
        if num_shards < 1:
            raise CrypTextError(f"num_shards must be >= 1, got {num_shards}")
        self.dictionary = dictionary
        self.num_shards = num_shards
        compiled_max = max(1, dictionary.config.cache_max_entries // num_shards)
        self._shards = tuple(
            _Shard(compiled_max, dictionary.trie_families) for _ in range(num_shards)
        )
        self._built_levels: set[int] = set()
        self._build_lock = tracked_rlock("shard.build")
        # Sound keys written to the dictionary but not yet re-pulled into
        # their buckets; populated by note_changes, drained on every read.
        self._pending: set[tuple[int, str]] = set()
        self._pending_lock = tracked_lock("shard.pending")
        dictionary.register_observer(self)

    # ------------------------------------------------------------------ #
    # construction / synchronization
    # ------------------------------------------------------------------ #
    def note_changes(self, changed_keys: set[tuple[int, str]]) -> None:
        """Record dictionary writes to apply lazily (the observer hook)."""
        with self._pending_lock:
            self._pending.update(changed_keys)

    def _build_level(self, level: int) -> None:
        """Materialize every bucket of phonetic level ``level``."""
        grouped: dict[tuple[int, str], list[DictionaryEntry]] = {}
        # collection.find(None) sorts by str(_id) — the same global order
        # tokens_for_key produces per bucket, so grouping preserves it.
        for document in self.dictionary.collection.find(None):
            key = document["keys"].get(f"k{level}")
            if key is None:
                continue
            entry = self.dictionary._to_entry(document)
            grouped.setdefault((level, key), []).append(entry)
        for shard in self._shards:
            with shard.lock:
                shard.buckets = {
                    bucket_key: entries
                    for bucket_key, entries in shard.buckets.items()
                    if bucket_key[0] != level
                }
                shard.compiled = OrderedDict(
                    (bucket_key, compiled)
                    for bucket_key, compiled in shard.compiled.items()
                    if bucket_key[0] != level
                )
        for bucket_key, entries in grouped.items():
            shard = self._shards[shard_of(bucket_key[1], self.num_shards)]
            with shard.lock:
                shard.buckets[bucket_key] = tuple(entries)
        self._built_levels.add(level)

    def _ensure_level(self, level: int) -> None:
        if level not in self._built_levels:
            with self._build_lock:
                if level not in self._built_levels:
                    self._build_level(level)
        self._drain_pending()

    def _drain_pending(self) -> None:
        if not self._pending:
            return
        with self._pending_lock:
            pending, self._pending = self._pending, set()
        self.refresh_keys(pending)

    def warm(
        self,
        level: int | None = None,
        from_snapshot: "str | Path | Snapshot | None" = None,
        mapped: bool = False,
    ) -> SnapshotLoadReport | None:
        """Materialize buckets — optionally hydrating tries from a snapshot.

        Without ``from_snapshot`` this is the original eager build of
        ``level`` (defaulting to the configured level) plus a drain of
        pending writes, returning ``None``.

        With ``from_snapshot`` (a path or a loaded
        :class:`~repro.storage.snapshot.Snapshot`), the snapshot's pre-built
        trie families are installed into the shard compiled caches so batch
        engines start serving without recompiling a single trie.  Guards:

        * the snapshot's content fingerprint must match the live
          dictionary's (the ``version()``-epoch/staleness guard — a snapshot
          saved before writes the dictionary has since absorbed must not
          resurrect old tries);
        * each bucket's token sequence is checked against its family before
          installation, so even an order drift between stores degrades to
          lazy recompilation of that bucket, never to wrong matches;
        * corruption or a mismatch falls back to the normal eager build and
          reports the reason (``loaded=False``) instead of raising.

        With ``mapped`` true a v2 sharded snapshot path is opened through
        ``mmap`` and each family's trie rows stay on disk until its bucket
        is first queried — cold start becomes O(page faults touched), and
        concurrent engines over the same snapshot share physical pages.
        """
        if from_snapshot is None:
            self._ensure_level(
                self.dictionary.config.phonetic_level if level is None else level
            )
            return None
        return self._warm_from_snapshot(from_snapshot, level=level, mapped=mapped)

    def _warm_from_snapshot(
        self,
        source: "str | Path | Snapshot",
        level: int | None = None,
        mapped: bool = False,
    ) -> SnapshotLoadReport:
        from ..storage.snapshot import resolve_snapshot

        def fallback(reason: str) -> SnapshotLoadReport:
            self.warm(level=level)
            return SnapshotLoadReport(loaded=False, hydrated_tries=False, reason=reason)

        try:
            snapshot = resolve_snapshot(source, mapped=mapped)
        except SnapshotError as exc:
            return fallback(str(exc))
        if snapshot.fingerprint != self.dictionary.content_fingerprint():
            return fallback(
                "snapshot fingerprint does not match the live dictionary "
                "(stale snapshot or diverged store)"
            )
        try:
            families = self.dictionary.adopt_snapshot_families(snapshot)
        except SnapshotError as exc:
            return fallback(str(exc))

        wanted_levels = snapshot.levels if level is None else (level,)
        built = [lvl for lvl in wanted_levels if lvl in self.dictionary.phonetic_levels]
        for lvl in built:
            self._ensure_level(lvl)
        installed = 0
        for lvl, key, family_row in snapshot.buckets:
            if lvl not in built:
                continue
            family = families[family_row]
            shard = self._shards[shard_of(key, self.num_shards)]
            with shard.lock:
                entries = shard.buckets.get((lvl, key))
                if entries is None:
                    continue
                if tuple(entry.token for entry in entries) != family.tokens:
                    # Bucket drifted from the snapshot despite the matching
                    # fingerprint (e.g. a write raced the warm-up); leave it
                    # to lazy compilation rather than install a wrong view.
                    continue
                if len(shard.compiled) >= shard.compiled_max:
                    continue
                shard.compiled[(lvl, key)] = CompiledBucket(entries, family=family)
                installed += 1
        return SnapshotLoadReport(
            loaded=True,
            hydrated_tries=True,
            documents=len(snapshot.documents),
            families=len(families),
            buckets=installed,
        )

    def refresh_keys(self, changed_keys: Iterable[tuple[int, str]]) -> frozenset[int]:
        """Re-pull the buckets for ``changed_keys`` from the dictionary.

        Returns the ids of the shards that were touched.  Levels that were
        never materialized are skipped (they will be built fresh on demand).
        Keys refreshed here are also cleared from the pending set so reads
        don't re-pull them a second time.
        """
        changed = set(changed_keys)
        touched: set[int] = set()
        with self._build_lock:
            with self._pending_lock:
                self._pending.difference_update(changed)
            for level, key in changed:
                if level not in self._built_levels:
                    continue
                shard_id = shard_of(key, self.num_shards)
                shard = self._shards[shard_id]
                bucket = tuple(
                    self.dictionary.tokens_for_key(key, phonetic_level=level)
                )
                with shard.lock:
                    shard.buckets[(level, key)] = bucket
                    shard.compiled.pop((level, key), None)
                    shard.refreshes += 1
                touched.add(shard_id)
        return frozenset(touched)

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def bucket(self, soundex_key: str, phonetic_level: int) -> tuple[DictionaryEntry, ...]:
        """Entries of one sound bucket (``tokens_for_key`` order)."""
        self._ensure_level(phonetic_level)
        shard = self._shards[shard_of(soundex_key, self.num_shards)]
        with shard.lock:
            return shard.buckets.get((phonetic_level, soundex_key), ())

    def compiled_bucket(self, soundex_key: str, phonetic_level: int) -> CompiledBucket:
        """One sound bucket compiled for trie matching (cached per shard)."""
        self._ensure_level(phonetic_level)
        shard = self._shards[shard_of(soundex_key, self.num_shards)]
        with shard.lock:
            return shard.compiled_for((phonetic_level, soundex_key))

    def english_bucket(
        self, soundex_key: str, phonetic_level: int
    ) -> tuple[DictionaryEntry, ...]:
        """The bucket restricted to correctly-spelled English words."""
        return tuple(
            entry for entry in self.bucket(soundex_key, phonetic_level) if entry.is_word
        )

    def buckets(
        self,
        keys: Iterable[tuple[int, str]],
        executor: Executor | None = None,
        compiled: bool = False,
    ) -> dict[tuple[int, str], Sequence[DictionaryEntry]]:
        """Resolve many ``(level, key)`` buckets, shard-parallel when possible.

        Keys are grouped by owning shard; with an ``executor`` each shard's
        group is resolved as one task on the pool, so a batch fans out across
        shards instead of probing one flat map token by token.  With
        ``compiled`` the values are :class:`CompiledBucket` instances (still
        sequences of the same entries in the same order), so shard workers
        compile each bucket's trie at most once per generation and every
        deduped query of the batch matches against it.
        """
        requested = set(keys)
        for level in {level for level, _ in requested}:
            self._ensure_level(level)

        by_shard: dict[int, list[tuple[int, str]]] = {}
        for level, key in requested:
            by_shard.setdefault(shard_of(key, self.num_shards), []).append((level, key))

        def resolve(shard_id: int, group: Sequence[tuple[int, str]]):
            shard = self._shards[shard_id]
            with shard.lock:
                if compiled:
                    return {
                        bucket_key: shard.compiled_for(bucket_key)
                        for bucket_key in group
                    }
                return {bucket_key: shard.buckets.get(bucket_key, ()) for bucket_key in group}

        results: dict[tuple[int, str], Sequence[DictionaryEntry]] = {}
        if executor is None or len(by_shard) <= 1:
            for shard_id, group in by_shard.items():
                results.update(resolve(shard_id, group))
        else:
            futures = [
                executor.submit(resolve, shard_id, group)
                for shard_id, group in by_shard.items()
            ]
            for future in futures:
                results.update(future.result())
        return results

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def shard_stats(self) -> tuple[ShardStats, ...]:
        """Per-shard bucket/entry counts (after forcing a default-level build)."""
        self._ensure_level(self.dictionary.config.phonetic_level)
        stats = []
        for shard_id, shard in enumerate(self._shards):
            with shard.lock:
                stats.append(
                    ShardStats(
                        shard_id=shard_id,
                        num_buckets=len(shard.buckets),
                        num_entries=sum(len(b) for b in shard.buckets.values()),
                        refreshes=shard.refreshes,
                        compiled_hits=shard.compiled_hits,
                        compiled_misses=shard.compiled_misses,
                        compiled_evictions=shard.compiled_evictions,
                        compiled_size=len(shard.compiled),
                    )
                )
        return tuple(stats)

    def compiled_cache_stats(self) -> dict[str, int]:
        """Aggregated compiled-bucket counters across every shard."""
        totals = {"hits": 0, "misses": 0, "evictions": 0, "size": 0}
        for shard in self._shards:
            with shard.lock:
                totals["hits"] += shard.compiled_hits
                totals["misses"] += shard.compiled_misses
                totals["evictions"] += shard.compiled_evictions
                totals["size"] += len(shard.compiled)
        return totals

    def to_dict(self) -> dict[str, object]:
        """Serialize shard layout for monitoring / the throughput benchmark."""
        return {
            "num_shards": self.num_shards,
            "shards": [stats.to_dict() for stats in self.shard_stats()],
        }
