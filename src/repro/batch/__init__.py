"""Batch throughput layer: sharded phonetic index + batch/streaming engine.

See :mod:`repro.batch.engine` for the :class:`BatchEngine` the ``CrypText``
facade, the service layer, the CLI and the social components run their bulk
paths on, and :mod:`repro.batch.sharded_index` for the sharded dictionary it
retrieves candidates from.
"""

from .engine import BatchEngine, EnrichmentReport
from .sharded_index import ShardedPhoneticIndex, ShardStats, shard_of

__all__ = [
    "BatchEngine",
    "EnrichmentReport",
    "ShardedPhoneticIndex",
    "ShardStats",
    "shard_of",
]
