"""Rule-based sentiment analyzer (VADER-style, from scratch).

Used by three parts of the reproduction:

* the **keyword enrichment** use case (§III-B): share of negative posts among
  search results, with and without perturbation-enriched queries;
* **Social Listening** (§III-E): per-day sentiment timelines of perturbation
  usage;
* the **simulated sentiment API** of Figure 4 compares against this analyzer
  when reporting robustness to perturbed inputs.

The analyzer is deliberately dictionary-driven: perturbed tokens
("demokRATs", "vacc1ne") are out of its lexicon, so — exactly like the
commercial APIs the paper evaluates — its accuracy degrades on perturbed
text unless the input is normalized first.  The ``normalizer`` hook makes
that comparison a one-liner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..text.tokenizer import Tokenizer
from .lexicon import DIMINISHERS, INTENSIFIERS, NEGATIONS, POLARITY_LEXICON

#: Labels produced by :meth:`SentimentAnalyzer.label`.
SENTIMENT_LABELS: tuple[str, ...] = ("negative", "neutral", "positive")


@dataclass(frozen=True)
class SentimentResult:
    """Sentiment of one text."""

    text: str
    compound: float
    label: str
    positive_hits: int
    negative_hits: int

    def to_dict(self) -> dict[str, object]:
        """Serialize for the API layer and timeline exports."""
        return {
            "text": self.text,
            "compound": self.compound,
            "label": self.label,
            "positive_hits": self.positive_hits,
            "negative_hits": self.negative_hits,
        }


class SentimentAnalyzer:
    """Lexicon + rule sentiment scorer.

    Parameters
    ----------
    lexicon:
        Word -> polarity mapping on a [-4, 4] scale; defaults to the bundled
        lexicon.
    positive_threshold / negative_threshold:
        Compound-score cut-offs for the three-way label.
    normalizer:
        Optional callable applied to the text before scoring (typically
        ``CrypText.normalize(...).normalized_text`` bound via a lambda);
        demonstrates the paper's "de-noising inputs of textual ML models"
        use case.
    """

    def __init__(
        self,
        lexicon: dict[str, float] | None = None,
        positive_threshold: float = 0.05,
        negative_threshold: float = -0.05,
        normalizer: Callable[[str], str] | None = None,
    ) -> None:
        self.lexicon = dict(POLARITY_LEXICON if lexicon is None else lexicon)
        self.positive_threshold = positive_threshold
        self.negative_threshold = negative_threshold
        self.normalizer = normalizer
        self._tokenizer = Tokenizer(lowercase=False)

    # ------------------------------------------------------------------ #
    def _token_valence(self, tokens: Sequence[str], position: int) -> float:
        token = tokens[position]
        lowered = token.lower()
        valence = self.lexicon.get(lowered, 0.0)
        if valence == 0.0:
            return 0.0
        # ALL-CAPS emphasis strengthens the expressed sentiment.
        if token.isupper() and len(token) > 2:
            valence *= 1.25
        # Look back up to three tokens for negations / intensity modifiers.
        scale = 1.0
        negated = False
        for offset in range(1, 4):
            index = position - offset
            if index < 0:
                break
            previous = tokens[index].lower()
            if previous in NEGATIONS:
                negated = not negated
            elif previous in INTENSIFIERS:
                scale += INTENSIFIERS[previous] * (1.0 - 0.15 * (offset - 1))
            elif previous in DIMINISHERS and DIMINISHERS[previous] > 0:
                scale -= DIMINISHERS[previous] * (1.0 - 0.15 * (offset - 1))
        valence *= max(scale, 0.1)
        if negated:
            valence *= -0.74
        return valence

    def _punctuation_emphasis(self, text: str) -> float:
        exclamations = min(text.count("!"), 4)
        return 1.0 + 0.05 * exclamations

    def polarity(self, text: str) -> SentimentResult:
        """Score ``text`` and return a :class:`SentimentResult`."""
        source = text
        if self.normalizer is not None:
            source = self.normalizer(text)
        tokens = [token.text for token in self._tokenizer.tokenize(source)]
        valences = [self._token_valence(tokens, position) for position in range(len(tokens))]
        positive_hits = sum(1 for valence in valences if valence > 0)
        negative_hits = sum(1 for valence in valences if valence < 0)
        total = sum(valences) * self._punctuation_emphasis(source)
        # VADER-style normalization squashes the sum into [-1, 1].
        compound = total / math.sqrt(total * total + 15.0) if total else 0.0
        label = self._label_for(compound)
        return SentimentResult(
            text=text,
            compound=round(compound, 4),
            label=label,
            positive_hits=positive_hits,
            negative_hits=negative_hits,
        )

    def _label_for(self, compound: float) -> str:
        if compound >= self.positive_threshold:
            return "positive"
        if compound <= self.negative_threshold:
            return "negative"
        return "neutral"

    def label(self, text: str) -> str:
        """Three-way label of ``text``."""
        return self.polarity(text).label

    def compound(self, text: str) -> float:
        """Compound score of ``text`` in ``[-1, 1]``."""
        return self.polarity(text).compound

    def is_negative(self, text: str) -> bool:
        """Whether ``text`` is labelled negative."""
        return self.label(text) == "negative"

    # ------------------------------------------------------------------ #
    def negative_share(self, texts: Sequence[str]) -> float:
        """Fraction of ``texts`` labelled negative (0 for an empty input).

        This is the statistic reported by the paper's keyword-enrichment use
        case ("67% of the tweets ... has negative sentiment").
        """
        if not texts:
            return 0.0
        return sum(1 for text in texts if self.is_negative(text)) / len(texts)

    def score_many(self, texts: Sequence[str]) -> list[SentimentResult]:
        """Score every text (bulk endpoint)."""
        return [self.polarity(text) for text in texts]
