"""Lexicon-and-rule sentiment analysis.

The paper's Look Up use case (§III-B) and the Social Listening function
(§III-E) both report the *sentiment* of matched posts ("only 67% of the
tweets found ... using keyword 'democrats' has negative sentiment, while that
number is much higher of 87% if a search query also includes the
perturbations").  This subpackage provides the sentiment signal those
analyses need: a from-scratch lexicon + rule analyzer in the VADER style
(polarity lexicon, negation flipping, intensity boosters, punctuation and
all-caps emphasis), returning a compound score in ``[-1, 1]`` and a
negative / neutral / positive label.
"""

from .lexicon import POLARITY_LEXICON, NEGATIONS, INTENSIFIERS, DIMINISHERS
from .analyzer import SentimentAnalyzer, SentimentResult

__all__ = [
    "POLARITY_LEXICON",
    "NEGATIONS",
    "INTENSIFIERS",
    "DIMINISHERS",
    "SentimentAnalyzer",
    "SentimentResult",
]
