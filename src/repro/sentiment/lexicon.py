"""Polarity lexicon and modifier inventories for the sentiment analyzer.

Scores are on a ``[-4, 4]`` scale (VADER convention): strongly negative words
near -3/-4, strongly positive near +3/+4.  The lexicon deliberately covers
the registers the reproduction works with — political discourse, public
health debate, abusive language — because those drive the paper's
keyword-enrichment and social-listening analyses.
"""

from __future__ import annotations

#: Word -> polarity score on a [-4, 4] scale.
POLARITY_LEXICON: dict[str, float] = {
    # strongly positive
    "love": 3.2, "loved": 3.0, "loves": 3.0, "great": 3.1, "excellent": 3.4,
    "amazing": 3.3, "awesome": 3.2, "wonderful": 3.2, "fantastic": 3.3,
    "brilliant": 3.0, "best": 3.2, "perfect": 3.1, "beautiful": 2.9,
    "happy": 2.7, "happiness": 2.7, "joy": 2.8, "win": 2.4, "winner": 2.4,
    "winning": 2.4, "success": 2.6, "successful": 2.6, "effective": 2.2,
    "safe": 2.0, "safety": 1.8, "protect": 2.0, "protected": 2.0,
    "protection": 2.0, "support": 1.8, "supports": 1.8, "supported": 1.8,
    "good": 1.9, "nice": 1.8, "better": 1.6, "improved": 1.8, "improve": 1.6,
    "strong": 1.5, "stronger": 1.5, "hope": 1.9, "hopeful": 2.0,
    "thank": 2.0, "thanks": 2.0, "grateful": 2.4, "proud": 2.2,
    "freedom": 1.6, "liberty": 1.5, "right": 1.0, "rights": 1.0,
    "true": 1.3, "truth": 1.3, "honest": 2.0, "fair": 1.7, "justice": 1.7,
    "smart": 1.9, "brave": 2.2, "hero": 2.6, "heroes": 2.6, "care": 1.5,
    "caring": 1.8, "help": 1.7, "helps": 1.7, "helpful": 2.0, "works": 1.3,
    "worked": 1.3, "trust": 1.8, "trusted": 1.8, "recovery": 1.6,
    "recovered": 1.6, "healthy": 2.0, "cure": 1.8, "celebrate": 2.4,
    "victory": 2.5, "progress": 1.8, "peace": 2.4, "peaceful": 2.3,
    "respect": 1.9, "welcome": 1.7, "agree": 1.3, "agreed": 1.3,
    # mildly positive
    "ok": 0.8, "okay": 0.8, "fine": 0.9, "interesting": 1.1, "cool": 1.4,
    "like": 1.2, "likes": 1.2, "liked": 1.2, "glad": 1.9, "useful": 1.5,
    # strongly negative
    "hate": -3.2, "hates": -3.2, "hated": -3.0, "hateful": -3.1,
    "terrible": -3.0, "horrible": -3.1, "awful": -2.9, "disgusting": -3.2,
    "worst": -3.3, "evil": -3.4, "vile": -3.2, "despicable": -3.3,
    "pathetic": -2.8, "worthless": -3.0, "garbage": -2.6, "trash": -2.6,
    "scum": -3.3, "filth": -3.0, "vermin": -3.2, "stupid": -2.6,
    "idiot": -2.8, "idiots": -2.8, "moron": -2.9, "morons": -2.9,
    "dumb": -2.4, "crazy": -1.8, "insane": -2.0, "liar": -2.8, "liars": -2.8,
    "lie": -2.3, "lies": -2.3, "lying": -2.5, "fraud": -2.8, "corrupt": -2.9,
    "corruption": -2.8, "scam": -2.8, "hoax": -2.5, "fake": -2.2,
    "criminal": -2.6, "criminals": -2.6, "crime": -2.3, "dangerous": -2.4,
    "danger": -2.3, "deadly": -2.8, "kill": -3.2, "kills": -3.2,
    "killed": -3.0, "killing": -3.1, "murder": -3.5, "murderer": -3.5,
    "die": -2.8, "died": -2.7, "dead": -2.6, "death": -2.7, "deaths": -2.7,
    "destroy": -2.7, "destroyed": -2.7, "destroying": -2.7, "ruin": -2.5,
    "ruined": -2.5, "war": -2.4, "violence": -2.8, "violent": -2.7,
    "attack": -2.3, "attacks": -2.3, "attacked": -2.3, "threat": -2.3,
    "threats": -2.3, "terror": -3.0, "terrorist": -3.2, "terrorists": -3.2,
    "terrorism": -3.1, "racist": -3.0, "racists": -3.0, "racism": -2.9,
    "bigot": -2.9, "bigots": -2.9, "bigotry": -2.8, "nazi": -3.3,
    "nazis": -3.3, "sexist": -2.8, "misogynist": -2.9, "abuse": -2.8,
    "abusive": -2.8, "harass": -2.7, "harassment": -2.7, "bully": -2.6,
    "bullying": -2.7, "troll": -1.9, "trolls": -1.9, "toxic": -2.5,
    "poison": -2.6, "poisoning": -2.6, "sick": -1.8, "sickening": -2.7,
    "disease": -2.0, "infection": -1.9, "infected": -1.9, "suffering": -2.4,
    "suffer": -2.3, "pain": -2.1, "painful": -2.2, "hurt": -2.0,
    "hurts": -2.0, "damage": -2.0, "damaged": -2.0, "harm": -2.2,
    "harmful": -2.4, "adverse": -1.8, "risk": -1.5, "risky": -1.7,
    "unsafe": -2.2, "fear": -2.0, "afraid": -1.9, "scared": -2.0,
    "scary": -2.0, "panic": -2.1, "crisis": -2.2, "disaster": -2.7,
    "catastrophe": -2.9, "collapse": -2.2, "fail": -2.1, "failed": -2.2,
    "failure": -2.3, "failing": -2.1, "loser": -2.4, "losers": -2.4,
    "lose": -1.8, "lost": -1.6, "losing": -1.8, "wrong": -1.7,
    "bad": -1.9, "worse": -2.2, "sad": -1.8, "angry": -2.1, "anger": -2.1,
    "furious": -2.6, "outrage": -2.4, "outrageous": -2.3, "disgrace": -2.6,
    "disgraceful": -2.6, "shame": -2.2, "shameful": -2.4, "ashamed": -2.1,
    "embarrassing": -1.9, "ridiculous": -1.9, "absurd": -1.8,
    "nonsense": -1.8, "useless": -2.2, "broken": -1.7, "mess": -1.6,
    "problem": -1.4, "problems": -1.4, "issue": -0.8, "issues": -0.8,
    "blame": -1.7, "blamed": -1.7, "guilty": -1.9, "cheat": -2.3,
    "cheated": -2.3, "steal": -2.4, "stole": -2.4, "stolen": -2.4,
    "rigged": -2.5, "censorship": -2.0, "censored": -1.9, "banned": -1.7,
    "ban": -1.4, "mandate": -0.9, "mandates": -0.9, "forced": -1.8,
    "force": -1.2, "coercion": -2.2, "tyranny": -2.8, "tyrant": -2.8,
    "dictator": -2.7, "sheep": -1.6, "sheeple": -2.0, "propaganda": -2.2,
    "disinformation": -2.2, "misinformation": -2.1, "conspiracy": -1.9,
    "cover": -0.3, "coverup": -2.2, "swamp": -1.7, "disgust": -2.8,
    "depression": -2.3, "depressed": -2.4, "anxiety": -2.0, "suicide": -3.0,
    "suicidal": -3.0, "overdose": -2.6, "addiction": -2.2, "cancer": -2.4,
    "whore": -3.0, "slut": -3.0, "bitch": -2.8, "bastard": -2.7,
    "damn": -1.6, "hell": -1.5, "crap": -1.9, "sucks": -2.1, "wtf": -1.8,
    "stfu": -2.2, "gtfo": -2.1, "pedophile": -3.4, "predator": -3.0,
    "groomer": -2.9, "pervert": -2.8, "creep": -2.3, "freak": -2.0,
    "savage": -1.9, "invasion": -2.2, "invaders": -2.3, "illegal": -1.9,
    "illegals": -2.2, "deport": -1.8, "wall": -0.2, "myocarditis": -2.0,
    "microchip": -1.2, "plandemic": -2.3, "scamdemic": -2.5,
    "depopulation": -2.4, "bioweapon": -2.6, "experimental": -1.3,
    "untested": -1.6, "exterminate": -3.4, "eradicate": -2.4, "lynch": -3.3,
    "shoot": -2.4, "shooting": -2.6, "gun": -1.2, "guns": -1.2,
    "bomb": -2.7, "bombs": -2.7, "doom": -2.4, "doomed": -2.4,
    "nightmare": -2.5, "slave": -2.4, "slavery": -2.6, "oppression": -2.5,
    "oppressed": -2.2, "discrimination": -2.4, "prejudice": -2.2,
    "injustice": -2.4, "victim": -1.6, "victims": -1.6,
}

#: Tokens that flip the polarity of the following sentiment-bearing word.
NEGATIONS: frozenset[str] = frozenset(
    {
        "not", "no", "never", "none", "nobody", "nothing", "neither",
        "nowhere", "hardly", "barely", "scarcely", "without", "cannot",
        "cant", "can't", "dont", "don't", "doesnt", "doesn't", "didnt",
        "didn't", "isnt", "isn't", "arent", "aren't", "wasnt", "wasn't",
        "wont", "won't", "wouldnt", "wouldn't", "shouldnt", "shouldn't",
        "couldnt", "couldn't", "aint", "ain't", "refuse", "refuses",
        "refused", "stop", "stopped",
    }
)

#: Tokens that amplify the polarity of the following word (booster value).
INTENSIFIERS: dict[str, float] = {
    "very": 0.3, "really": 0.3, "extremely": 0.4, "absolutely": 0.35,
    "totally": 0.3, "completely": 0.3, "utterly": 0.35, "so": 0.25,
    "too": 0.2, "incredibly": 0.4, "insanely": 0.35, "super": 0.3,
    "deeply": 0.3, "highly": 0.25, "truly": 0.25, "literally": 0.2,
    "damn": 0.25, "fucking": 0.4, "freaking": 0.3,
}

#: Tokens that dampen the polarity of the following word.
DIMINISHERS: dict[str, float] = {
    "slightly": 0.3, "somewhat": 0.3, "kinda": 0.25, "kind": 0.2,
    "sorta": 0.25, "a": 0.0, "bit": 0.25, "little": 0.25, "barely": 0.4,
    "hardly": 0.4, "almost": 0.2, "partly": 0.25, "rather": 0.15,
    "fairly": 0.15, "moderately": 0.25,
}
