"""Synthetic corpus and dataset builders.

Three builders cover everything the experiments need:

* :func:`build_social_corpus` — social-media-style posts with timestamps,
  platform, topic, sentiment and toxicity annotations, a share of which carry
  human-written perturbations of their sensitive keywords (more often so in
  negative / toxic posts, matching the paper's observation that perturbed
  content skews controversial);
* :func:`build_classification_dataset` — clean labelled ``(texts, labels)``
  pairs for training the simulated NLP APIs (toxicity, sentiment, topic);
* :func:`build_perturbation_pairs` — labelled ``(original, perturbed,
  strategy)`` tuples used as ground truth by the ``(k, d)`` and Soundex
  ablation benchmarks.

All builders are deterministic given their ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import date, timedelta
from typing import Sequence

from ..errors import DatasetError
from ..text.wordlist import EnglishLexicon, default_lexicon
from .seeds import (
    HUMAN_STRATEGIES,
    HumanPerturbationGenerator,
    SENTENCE_TEMPLATES,
    Template,
    available_topics,
)

#: Keywords the corpus treats as "sensitive": these are the words posts get
#: perturbed on and the words the keyword-enrichment experiment queries.
SENSITIVE_KEYWORDS: tuple[str, ...] = (
    "democrats",
    "republicans",
    "vaccine",
    "booster",
    "suicide",
    "depression",
    "muslim",
    "chinese",
    "politicians",
    "mandate",
    # "amazon" is the Figure 1 showcase query; brand names are frequently
    # perturbed to dodge brand-monitoring filters.
    "amazon",
    # Abusive vocabulary is censored/perturbed heavily in the wild to evade
    # moderation — the paper's core observation about toxic content.
    "worthless",
    "pathetic",
    "disgusting",
    "stupid",
    "idiot",
    "idiots",
    "moron",
    "scum",
    "trash",
    "racist",
    "racists",
    "terrorist",
    "terrorists",
    "criminals",
    "liars",
    "hate",
    "kill",
    "terrible",
    "horrible",
)

#: The paper's Nov. 2021 Twitter-search window anchors the synthetic timeline.
CORPUS_START_DATE = date(2021, 11, 1)

#: Probability that a post carries perturbations, by (sentiment, toxic).
#: Negative / toxic content is perturbed far more often — users censor
#: sensitive wording and dodge moderation exactly there (paper §I, §III-B).
_PERTURBATION_RATES: dict[tuple[str, bool], float] = {
    ("negative", True): 0.85,
    ("negative", False): 0.65,
    ("neutral", False): 0.15,
    ("neutral", True): 0.45,
    ("positive", False): 0.08,
    ("positive", True): 0.30,
}


@dataclass(frozen=True)
class SyntheticPost:
    """One synthetic social post with full annotations."""

    post_id: int
    platform: str
    author: str
    created_at: str
    topic: str
    sentiment: str
    toxic: bool
    clean_text: str
    text: str
    perturbed_pairs: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    @property
    def has_perturbation(self) -> bool:
        """Whether the published text differs from the clean text."""
        return bool(self.perturbed_pairs)

    def to_document(self) -> dict[str, object]:
        """Serialize to a document-store record (used by the platform sim)."""
        return {
            "post_id": self.post_id,
            "platform": self.platform,
            "author": self.author,
            "created_at": self.created_at,
            "topic": self.topic,
            "sentiment": self.sentiment,
            "toxic": self.toxic,
            "clean_text": self.clean_text,
            "text": self.text,
            "perturbed_pairs": [list(pair) for pair in self.perturbed_pairs],
        }


def _fill_template(template: Template, rng: random.Random, lexicon: EnglishLexicon) -> str:
    """Instantiate a template's slots from the lexicon groups."""
    text = template.text
    if "{keyword}" in text:
        keyword = rng.choice(template.keywords) if template.keywords else rng.choice(
            SENSITIVE_KEYWORDS
        )
        text = text.replace("{keyword}", keyword)
    for group in ("politics", "health", "abuse", "identity", "common"):
        slot = "{" + group + "}"
        while slot in text:
            text = text.replace(slot, rng.choice(lexicon.sample_space(group)), 1)
    return text


def _perturb_first_vocabulary() -> frozenset[str]:
    """Words users censor first: the sensitive keywords plus abusive vocabulary.

    The paper observes that perturbations cluster on exactly these words —
    controversial keywords (to dodge topical filters) and abusive terms (to
    dodge moderation).
    """
    return frozenset(SENSITIVE_KEYWORDS) | default_lexicon().group("abuse")


def _perturb_post_text(
    text: str,
    rng: random.Random,
    generator: HumanPerturbationGenerator,
    max_perturbed_tokens: int = 3,
) -> tuple[str, tuple[tuple[str, str], ...]]:
    """Perturb the sensitive keywords of a post text."""
    words = text.split(" ")
    perturb_first = _perturb_first_vocabulary()
    keyword_positions = [
        index
        for index, word in enumerate(words)
        if word.lower().strip(".,!?") in perturb_first
    ]
    long_word_positions = [
        index
        for index, word in enumerate(words)
        if index not in keyword_positions and len(word) >= 8
    ]
    if not keyword_positions and not long_word_positions:
        long_word_positions = [
            index for index, word in enumerate(words) if len(word) >= 5
        ]
    if not keyword_positions and not long_word_positions:
        return text, ()
    how_many = min(
        len(keyword_positions) + len(long_word_positions),
        rng.randint(1, max_perturbed_tokens),
    )
    # Users censor the *sensitive* word first ("vacc1ne", "dem0crats"); other
    # long words are only perturbed once every keyword occurrence is.
    chosen = keyword_positions[:how_many]
    remaining = how_many - len(chosen)
    if remaining > 0 and long_word_positions:
        chosen = chosen + rng.sample(
            long_word_positions, min(remaining, len(long_word_positions))
        )
    pairs: list[tuple[str, str]] = []
    for index in chosen:
        original = words[index]
        perturbed, strategy = generator.apply(original)
        if strategy == "none" or perturbed == original:
            continue
        words[index] = perturbed
        pairs.append((original, perturbed))
    return " ".join(words), tuple(pairs)


def build_social_corpus(
    num_posts: int = 1000,
    seed: int = 20230116,
    platforms: Sequence[str] = ("twitter", "reddit"),
    topics: Sequence[str] | None = None,
    num_days: int = 30,
    num_authors: int = 200,
    lexicon: EnglishLexicon | None = None,
) -> list[SyntheticPost]:
    """Generate a synthetic social corpus.

    Parameters
    ----------
    num_posts:
        Number of posts to generate.
    seed:
        RNG seed (the corpus is fully determined by its arguments).
    platforms:
        Platform names to spread posts across (weighted towards the first,
        mirroring the Twitter-heavy crawl of the original system).
    topics:
        Restrict to these topics (default: every bundled topic).
    num_days:
        Length of the timeline starting at :data:`CORPUS_START_DATE`.
    num_authors:
        Size of the synthetic author pool.
    lexicon:
        Lexicon supplying slot-filler vocabulary.
    """
    if num_posts < 1:
        raise DatasetError(f"num_posts must be >= 1, got {num_posts}")
    if num_days < 1:
        raise DatasetError(f"num_days must be >= 1, got {num_days}")
    if not platforms:
        raise DatasetError("at least one platform name is required")
    selected_topics = tuple(topics) if topics is not None else available_topics()
    unknown = set(selected_topics) - set(available_topics())
    if unknown:
        raise DatasetError(f"unknown topics: {sorted(unknown)}")
    lexicon = lexicon if lexicon is not None else default_lexicon()
    rng = random.Random(seed)
    generator = HumanPerturbationGenerator(rng=rng)
    templates = [
        template for template in SENTENCE_TEMPLATES if template.topic in selected_topics
    ]
    posts: list[SyntheticPost] = []
    for post_id in range(1, num_posts + 1):
        template = rng.choice(templates)
        clean_text = _fill_template(template, rng, lexicon)
        rate = _PERTURBATION_RATES.get((template.sentiment, template.toxic), 0.2)
        if rng.random() < rate:
            text, pairs = _perturb_post_text(clean_text, rng, generator)
        else:
            text, pairs = clean_text, ()
        platform = platforms[0] if rng.random() < 0.7 or len(platforms) == 1 else rng.choice(
            platforms[1:]
        )
        day = rng.randrange(num_days)
        created_at = (CORPUS_START_DATE + timedelta(days=day)).isoformat()
        posts.append(
            SyntheticPost(
                post_id=post_id,
                platform=platform,
                author=f"user_{rng.randrange(num_authors):04d}",
                created_at=created_at,
                topic=template.topic,
                sentiment=template.sentiment,
                toxic=template.toxic,
                clean_text=clean_text,
                text=text,
                perturbed_pairs=pairs,
            )
        )
    return posts


def corpus_texts(posts: Sequence[SyntheticPost], clean: bool = False) -> list[str]:
    """Extract the (clean or published) texts from a corpus."""
    return [post.clean_text if clean else post.text for post in posts]


def build_classification_dataset(
    kind: str,
    num_samples: int = 600,
    seed: int = 7,
    lexicon: EnglishLexicon | None = None,
) -> tuple[list[str], list[str]]:
    """Clean labelled data for the simulated NLP APIs.

    ``kind`` selects the labelling:

    * ``"toxicity"`` — labels ``toxic`` / ``nontoxic``;
    * ``"sentiment"`` — labels ``negative`` / ``neutral`` / ``positive``;
    * ``"topic"`` — the template topic (politics, health, abuse, technology).

    The texts are *clean* (no perturbations): the simulated APIs must mirror
    commercial models trained on well-formed English.
    """
    if kind not in ("toxicity", "sentiment", "topic"):
        raise DatasetError(f"unknown dataset kind: {kind!r}")
    if num_samples < 1:
        raise DatasetError(f"num_samples must be >= 1, got {num_samples}")
    lexicon = lexicon if lexicon is not None else default_lexicon()
    rng = random.Random(seed)
    texts: list[str] = []
    labels: list[str] = []
    templates = list(SENTENCE_TEMPLATES)
    for _ in range(num_samples):
        template = rng.choice(templates)
        text = _fill_template(template, rng, lexicon)
        texts.append(text)
        if kind == "toxicity":
            labels.append("toxic" if template.toxic else "nontoxic")
        elif kind == "sentiment":
            labels.append(template.sentiment)
        else:
            labels.append(template.topic)
    return texts, labels


#: Frames and slot vocabularies for the Figure-4 robustness datasets.  Every
#: frame is shared across classes, so the class signal is concentrated in the
#: slot word — the same situation commercial moderation models face, where a
#: single obscured keyword is the difference between "toxic" and "fine".
_ROBUSTNESS_FRAMES: tuple[str, ...] = (
    "you are a truly {slot} person and everyone here knows it",
    "honestly that was the most {slot} comment i have read all week",
    "my neighbor is a {slot} human being and the whole street agrees",
    "these people online are {slot} and should be treated accordingly",
    "what a {slot} thing to post on a monday morning",
    "the replies under that video are full of {slot} takes",
    "imagine writing something so {slot} and hitting send anyway",
    "her latest post was absolutely {slot} according to the comments",
)

_TOPIC_FRAMES: tuple[str, ...] = (
    "everyone keeps arguing about the {slot} again this week",
    "my feed is completely full of posts about the {slot} today",
    "the news covered the {slot} story all morning long",
    "another long thread about the {slot} is trending right now",
    "people will not stop talking about the {slot} situation",
)

_ROBUSTNESS_SLOTS: dict[str, dict[str, tuple[str, ...]]] = {
    "toxicity": {
        "toxic": (
            "worthless", "pathetic", "disgusting", "stupid", "idiot", "moron",
            "scum", "trash", "racist", "terrorist", "criminal", "vermin",
        ),
        "nontoxic": (
            "wonderful", "brilliant", "generous", "thoughtful", "talented",
            "champion", "hero", "friend", "kind", "lovely", "supportive",
            "inspiring",
        ),
    },
    "sentiment": {
        "negative": (
            "terrible", "horrible", "disgusting", "pathetic", "garbage",
            "worthless", "hateful", "vile", "trash", "toxic",
        ),
        "positive": (
            "wonderful", "amazing", "fantastic", "excellent", "beautiful",
            "brilliant", "perfect", "delightful", "inspiring", "lovely",
        ),
        "neutral": (
            "ordinary", "routine", "scheduled", "standard", "typical",
            "regular", "expected", "unremarkable",
        ),
    },
    "topic": {
        "politics": (
            "democrats", "republicans", "senate", "election", "politicians",
            "congress", "ballot",
        ),
        "health": (
            "vaccine", "booster", "mandate", "pandemic", "hospital",
            "doctors", "quarantine",
        ),
        "technology": (
            "amazon", "google", "youtube", "algorithm", "smartphone",
            "internet", "software",
        ),
    },
}


def build_robustness_dataset(
    kind: str,
    num_samples: int = 500,
    seed: int = 7,
) -> tuple[list[str], list[str]]:
    """Keyword-centred labelled data for the Figure-4 robustness sweep.

    Unlike :func:`build_classification_dataset` (whose template texts carry
    class evidence in many tokens), these texts put the class-deciding word
    in a single slot of a class-agnostic frame.  That mirrors the situation
    the paper probes with Perspective and the Google NLP APIs: hide the one
    sensitive keyword behind a human-written perturbation and the clean-text
    model loses its evidence.
    """
    if kind not in _ROBUSTNESS_SLOTS:
        raise DatasetError(
            f"unknown robustness dataset kind: {kind!r} "
            f"(expected one of {sorted(_ROBUSTNESS_SLOTS)})"
        )
    if num_samples < 1:
        raise DatasetError(f"num_samples must be >= 1, got {num_samples}")
    rng = random.Random(seed)
    frames = _TOPIC_FRAMES if kind == "topic" else _ROBUSTNESS_FRAMES
    slot_table = _ROBUSTNESS_SLOTS[kind]
    labels_cycle = sorted(slot_table)
    texts: list[str] = []
    labels: list[str] = []
    for index in range(num_samples):
        label = labels_cycle[index % len(labels_cycle)]
        frame = rng.choice(frames)
        slot = rng.choice(slot_table[label])
        texts.append(frame.replace("{slot}", slot))
        labels.append(label)
    order = list(range(num_samples))
    rng.shuffle(order)
    return [texts[i] for i in order], [labels[i] for i in order]


def build_perturbation_pairs(
    num_pairs: int = 300,
    seed: int = 11,
    words: Sequence[str] | None = None,
    strategies: Sequence[str] | None = None,
) -> list[tuple[str, str, str]]:
    """Ground-truth ``(original, perturbed, strategy)`` tuples.

    Used by the ablation benchmarks to measure lookup recall (does Look Up
    retrieve the perturbed form when queried with the original?) and
    normalization accuracy (is the perturbed form corrected back?).
    """
    if num_pairs < 1:
        raise DatasetError(f"num_pairs must be >= 1, got {num_pairs}")
    chosen_strategies = tuple(strategies) if strategies is not None else HUMAN_STRATEGIES
    unknown = set(chosen_strategies) - set(HUMAN_STRATEGIES)
    if unknown:
        raise DatasetError(f"unknown strategies: {sorted(unknown)}")
    rng = random.Random(seed)
    generator = HumanPerturbationGenerator(rng=rng)
    vocabulary = (
        tuple(words)
        if words is not None
        else tuple(sorted(set(SENSITIVE_KEYWORDS) | set(default_lexicon().group("politics"))
                         | set(default_lexicon().group("health"))))
    )
    vocabulary = tuple(word for word in vocabulary if len(word) >= 4)
    if not vocabulary:
        raise DatasetError("no usable words for perturbation pairs")
    pairs: list[tuple[str, str, str]] = []
    while len(pairs) < num_pairs:
        word = rng.choice(vocabulary)
        strategy = rng.choice(chosen_strategies)
        perturbed, used = generator.apply(word, strategy=strategy)
        if used == "none" or perturbed == word:
            continue
        pairs.append((word, perturbed, used))
    return pairs
