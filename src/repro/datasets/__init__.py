"""Synthetic corpora that stand in for the paper's crawled social data.

The original CrypText database is curated from public abuse-detection
corpora (rumours, hate speech, cyberbullying, Wikipedia personal attacks)
and a continuous Twitter crawl — data this offline reproduction cannot
redistribute or reach.  This subpackage builds the closest synthetic
equivalent: seeded generators that produce social-media-style posts about
the paper's focus topics (politics, vaccine mandates, abusive discourse)
and then *perturb them with the same human-written strategies the paper
catalogues* (emphasis capitalization, leet substitution, hyphenation,
character repetition, phonetic respelling).

Everything downstream — dictionary construction, Look Up, Normalization,
keyword enrichment, Social Listening, the Figure-4 robustness sweep —
exercises exactly the code paths a real crawl would; only the byte source
differs (see DESIGN.md §3).
"""

from .seeds import (
    HUMAN_STRATEGIES,
    HumanPerturbationGenerator,
    SENTENCE_TEMPLATES,
    Template,
)
from .builders import (
    SyntheticPost,
    build_social_corpus,
    build_classification_dataset,
    build_perturbation_pairs,
    build_robustness_dataset,
    corpus_texts,
)

__all__ = [
    "HUMAN_STRATEGIES",
    "HumanPerturbationGenerator",
    "SENTENCE_TEMPLATES",
    "Template",
    "SyntheticPost",
    "build_social_corpus",
    "build_classification_dataset",
    "build_perturbation_pairs",
    "build_robustness_dataset",
    "corpus_texts",
]
