"""Seed material for the synthetic corpora.

Two ingredients live here:

* :class:`HumanPerturbationGenerator` — programmatic versions of the
  perturbation strategies the paper observes humans using in the wild
  (§II-C).  The generators are used to inject realistic perturbations into
  the synthetic posts, and independently as labelled ground truth for the
  ``(k, d)`` ablation benchmark.
* :data:`SENTENCE_TEMPLATES` — post templates per topic, with sentiment and
  toxicity annotations, whose slots are filled from the bundled lexicon's
  thematic word groups.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import DatasetError
from ..text.charmap import LEET_SUBSTITUTIONS

# --------------------------------------------------------------------------- #
# human-written perturbation strategies
# --------------------------------------------------------------------------- #

#: Strategy names implemented by :class:`HumanPerturbationGenerator`.
HUMAN_STRATEGIES: tuple[str, ...] = (
    "emphasis",
    "leet",
    "separator",
    "repetition",
    "phonetic",
    "deletion",
    "doubling",
)

#: Phonetically-similar single-character swaps observed in the wild
#: ("depression" -> "depresxion", "vaccine" -> "vakcine").
_PHONETIC_SWAPS: dict[str, tuple[str, ...]] = {
    "c": ("k", "s"),
    "k": ("c",),
    "s": ("x", "z", "c"),
    "x": ("s",),
    "z": ("s",),
    "f": ("ph",),
    "v": ("f",),
    "i": ("y",),
    "y": ("i",),
    "o": ("u",),
    "u": ("o",),
    "e": ("a",),
    "a": ("e",),
}

#: Iconic emphasis rewrites observed in the wild, reproduced verbatim.  Note
#: that "repubLIEcans" also *inserts* a character — exactly the kind of
#: creative, rule-defying manipulation the paper highlights (§II-C).
_EMPHASIS_REWRITES: dict[str, str] = {
    "democrats": "democRATs",
    "democrat": "democRAT",
    "republicans": "repubLIEcans",
    "republican": "repubLIEcan",
    "politicians": "politiLIARcians",
}

#: Embedded words humans uppercase for emphasis, per target word; fall back
#: to uppercasing a random span when no known sub-word exists.
_EMPHASIS_SPANS: dict[str, str] = {
    "media": "me",
    "vaccine": "vax",
    "government": "men",
    "mandate": "man",
}


class HumanPerturbationGenerator:
    """Applies wild-style, human-like perturbations to single words.

    Parameters
    ----------
    rng:
        Source of randomness (pass a seeded :class:`random.Random` for
        reproducible corpora).
    """

    def __init__(self, rng: random.Random | None = None) -> None:
        self.rng = rng if rng is not None else random.Random(0)

    # ------------------------------------------------------------------ #
    def emphasis(self, word: str) -> str:
        """Uppercase an embedded span ("democrats" -> "democRATs")."""
        lowered = word.lower()
        if lowered in _EMPHASIS_REWRITES:
            return _EMPHASIS_REWRITES[lowered]
        span = _EMPHASIS_SPANS.get(lowered)
        if span and span in lowered:
            start = lowered.index(span)
            return word[:start] + word[start : start + len(span)].upper() + word[start + len(span):]
        if len(word) < 4:
            return word.upper()
        start = self.rng.randrange(1, max(2, len(word) - 2))
        length = self.rng.choice((2, 3))
        return word[:start] + word[start : start + length].upper() + word[start + length:]

    def leet(self, word: str) -> str:
        """Replace one or two letters with visually similar symbols."""
        positions = [
            index for index, char in enumerate(word) if char.lower() in LEET_SUBSTITUTIONS
        ]
        if not positions:
            return word
        how_many = 1 if len(positions) == 1 else self.rng.choice((1, 2))
        chosen = self.rng.sample(positions, how_many)
        characters = list(word)
        for index in chosen:
            characters[index] = self.rng.choice(LEET_SUBSTITUTIONS[characters[index].lower()])
        return "".join(characters)

    def separator(self, word: str) -> str:
        """Insert a separator inside the word ("muslim" -> "mus-lim")."""
        if len(word) < 4:
            return word
        index = self.rng.randrange(2, len(word) - 1)
        mark = self.rng.choice(("-", ".", "_"))
        return word[:index] + mark + word[index:]

    def repetition(self, word: str) -> str:
        """Stretch one character ("porn" -> "porrrrn")."""
        if len(word) < 3:
            return word
        index = self.rng.randrange(1, len(word) - 1)
        repeats = self.rng.choice((2, 3, 4))
        return word[: index + 1] + word[index] * repeats + word[index + 1 :]

    def phonetic(self, word: str) -> str:
        """Swap one character for a phonetically similar one."""
        positions = [
            index for index, char in enumerate(word) if char.lower() in _PHONETIC_SWAPS
        ]
        if not positions:
            return word
        index = self.rng.choice(positions[1:] if len(positions) > 1 else positions)
        replacement = self.rng.choice(_PHONETIC_SWAPS[word[index].lower()])
        if word[index].isupper():
            replacement = replacement.upper()
        return word[:index] + replacement + word[index + 1 :]

    def deletion(self, word: str) -> str:
        """Drop one inner character ("democrats" -> "demcrats")."""
        if len(word) < 4:
            return word
        index = self.rng.randrange(1, len(word) - 1)
        return word[:index] + word[index + 1 :]

    def doubling(self, word: str) -> str:
        """Double one inner character ("dirty" -> "dirrty")."""
        if len(word) < 3:
            return word
        index = self.rng.randrange(1, len(word) - 1)
        return word[: index + 1] + word[index] + word[index + 1 :]

    # ------------------------------------------------------------------ #
    def apply(self, word: str, strategy: str | None = None) -> tuple[str, str]:
        """Perturb ``word``; returns ``(perturbed, strategy_used)``.

        When ``strategy`` is omitted one is drawn at random.  If the drawn
        strategy leaves the word unchanged (e.g. no leet-able characters),
        the other strategies are tried in random order so the caller always
        receives a genuine perturbation for words of length >= 3.
        """
        if strategy is not None and strategy not in HUMAN_STRATEGIES:
            raise DatasetError(f"unknown perturbation strategy: {strategy!r}")
        order = [strategy] if strategy is not None else []
        remaining = [name for name in HUMAN_STRATEGIES if name not in order]
        self.rng.shuffle(remaining)
        order.extend(remaining)
        for name in order:
            perturbed = getattr(self, name)(word)
            if perturbed != word:
                return perturbed, name
        return word, "none"


# --------------------------------------------------------------------------- #
# sentence templates
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Template:
    """A post template.

    ``text`` may contain ``{politics}``, ``{health}``, ``{abuse}``,
    ``{identity}``, ``{common}`` slots — each is filled with a random word
    from the corresponding lexicon group — plus the fixed ``{keyword}`` slot
    filled with the template's focus keyword.
    """

    text: str
    topic: str
    sentiment: str
    toxic: bool
    keywords: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.sentiment not in ("negative", "neutral", "positive"):
            raise DatasetError(f"invalid sentiment label: {self.sentiment!r}")


#: Post templates.  The register intentionally mirrors the paper's scenarios:
#: political discourse, vaccine-mandate debate, abusive content, plus neutral
#: technology/product chatter so topic categorization has contrast.
SENTENCE_TEMPLATES: tuple[Template, ...] = (
    # ---- politics, negative -------------------------------------------------
    Template(
        "the {keyword} are responsible for this mess and everyone knows they lie",
        "politics", "negative", False, ("democrats", "republicans", "politicians"),
    ),
    Template(
        "i hate how the {keyword} keep pushing their corrupt agenda on us",
        "politics", "negative", False, ("democrats", "republicans"),
    ),
    Template(
        "the {keyword} rigged the election and the media covers it up",
        "politics", "negative", False, ("democrats", "republicans"),
    ),
    Template(
        "these {keyword} are liars and traitors who destroy this country",
        "politics", "negative", True, ("democrats", "republicans", "politicians"),
    ),
    Template(
        "wake up people the {keyword} want total control over your life",
        "politics", "negative", False, ("democrats", "republicans"),
    ),
    Template(
        "the {keyword} attempted a race war and nobody talks about it",
        "politics", "negative", False, ("democrats", "republicans"),
    ),
    Template(
        "another fake scandal pushed by the {keyword} and their corrupt friends",
        "politics", "negative", False, ("democrats", "republicans"),
    ),
    # ---- politics, positive / neutral --------------------------------------
    Template(
        "proud of the {keyword} for passing the new bill today",
        "politics", "positive", False, ("democrats", "republicans"),
    ),
    Template(
        "great speech tonight the {keyword} finally support working families",
        "politics", "positive", False, ("democrats", "republicans"),
    ),
    Template(
        "the {keyword} announced their new policy platform this morning",
        "politics", "neutral", False, ("democrats", "republicans"),
    ),
    Template(
        "the {keyword} will debate the budget in congress next week",
        "politics", "neutral", False, ("democrats", "republicans"),
    ),
    # ---- health / vaccine ----------------------------------------------------
    Template(
        "the {keyword} mandate is government overreach and i refuse to comply",
        "health", "negative", False, ("vaccine", "mask", "booster"),
    ),
    Template(
        "they hide the adverse reactions because the {keyword} is a big pharma scam",
        "health", "negative", False, ("vaccine", "booster"),
    ),
    Template(
        "stop forcing the {keyword} on our children it is dangerous and untested",
        "health", "negative", False, ("vaccine", "booster"),
    ),
    Template(
        "my friend got sick after the {keyword} and doctors refuse to listen",
        "health", "negative", False, ("vaccine", "booster", "shot"),
    ),
    Template(
        "the {keyword} saved my family and i am grateful to every nurse out there",
        "health", "positive", False, ("vaccine", "booster"),
    ),
    Template(
        "got my {keyword} today quick and easy thank you to the clinic staff",
        "health", "positive", False, ("vaccine", "booster", "shot"),
    ),
    Template(
        "the county opens a new {keyword} clinic downtown on monday",
        "health", "neutral", False, ("vaccine", "booster"),
    ),
    Template(
        "struggling with {keyword} lately and it feels like nobody cares",
        "health", "negative", False, ("depression", "anxiety"),
    ),
    Template(
        "if you are thinking about {keyword} please reach out to the hotline",
        "health", "negative", False, ("suicide", "selfharm"),
    ),
    # ---- abusive / toxic -----------------------------------------------------
    Template(
        "you are a worthless {abuse} and everyone at school hates you",
        "abuse", "negative", True, (),
    ),
    Template(
        "shut up you pathetic {abuse} nobody wants you here",
        "abuse", "negative", True, (),
    ),
    Template(
        "these {identity} people are {abuse} and should get out of our country",
        "abuse", "negative", True, (),
    ),
    Template(
        "all {identity} are criminals and liars simple as that",
        "abuse", "negative", True, (),
    ),
    Template(
        "go back to where you came from you dirty {abuse}",
        "abuse", "negative", True, (),
    ),
    Template(
        "the {identity} community deserves respect and support from all of us",
        "abuse", "positive", False, (),
    ),
    Template(
        "report and block accounts that harass {identity} users please stay safe",
        "abuse", "neutral", False, (),
    ),
    # ---- technology / products (neutral contrast for categorization) --------
    Template(
        "the new {keyword} delivery arrived early and the packaging was perfect",
        "technology", "positive", False, ("amazon", "apple", "google"),
    ),
    Template(
        "my {keyword} order is three weeks late and support keeps lying to me",
        "technology", "negative", False, ("amazon", "apple"),
    ),
    Template(
        "{keyword} announced a new data center in the region this quarter",
        "technology", "neutral", False, ("amazon", "google", "microsoft"),
    ),
    Template(
        "the {keyword} algorithm keeps recommending the same viral posts",
        "technology", "neutral", False, ("youtube", "tiktok", "twitter", "reddit"),
    ),
    Template(
        "love the new update the {keyword} app finally works offline",
        "technology", "positive", False, ("reddit", "twitter", "youtube"),
    ),
    Template(
        "the {keyword} outage broke half the internet again today",
        "technology", "negative", False, ("amazon", "google", "facebook"),
    ),
)


def templates_for_topic(topic: str) -> tuple[Template, ...]:
    """All templates of one topic."""
    selected = tuple(template for template in SENTENCE_TEMPLATES if template.topic == topic)
    if not selected:
        raise DatasetError(f"no templates for topic {topic!r}")
    return selected


def available_topics() -> tuple[str, ...]:
    """Topics covered by the bundled templates."""
    return tuple(sorted({template.topic for template in SENTENCE_TEMPLATES}))
