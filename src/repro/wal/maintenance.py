"""Background maintenance: auto-save, delta compaction, WAL truncation.

A durable deployment has three recurring chores:

* **auto-save** — refresh the snapshot every ``autosave_interval`` seconds
  so the WAL tail (what recovery must replay) stays short; incremental by
  default, so steady-state saves cost proportionally to what changed;
* **compaction** — after ``compact_every`` delta links, fold the chain back
  into one full snapshot so resolution never walks an unbounded chain;
* **WAL truncation** — after each full save, drop the segments it covers.

:class:`MaintenanceScheduler` runs them two ways at once:

* **cooperatively** — :meth:`tick` is cheap when nothing is due, so hot
  loops call it inline: :meth:`StreamCrawler.crawl_once
  <repro.social.crawler.StreamCrawler.crawl_once>` after each ingest round
  (the ROADMAP's crawler auto-save hook) and the batch engine's streaming
  generators between chunks — a long enrichment or streaming job persists
  warm state periodically without any extra thread;
* **in the background** — :meth:`start` spawns a daemon thread waking every
  few seconds, for services whose request loops should never pay a save
  inline.  Saves run concurrently with readers (the dictionary snapshots
  its state under its own write lock), so shards keep serving while a
  snapshot is written.

Truncation safety: the WAL is truncated only through positions covered by a
**full** snapshot.  Delta saves leave the log alone, so a broken delta
chain can always degrade to base + full replay.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..analysis.sanitizer import tracked_rlock
from ..errors import CrypTextError, SnapshotError, WalError
from ..storage.snapshot import SNAPSHOT_FILE_NAME
from .log import ChangeLog, gc_superseded_segments, resolve_wal_directory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.dictionary import PerturbationDictionary, SnapshotSaveReport


@dataclass(frozen=True)
class MaintenancePolicy:
    """Tunables of the maintenance loop.

    ``autosave_interval`` of ``None`` disables interval-driven saves (the
    scheduler then only acts on explicit :meth:`MaintenanceScheduler.run_now`
    triggers).  ``compact_every`` bounds the delta-chain length; 0 disables
    compaction entirely (chains grow until an explicit trigger).
    ``superseded_retention`` is how long (seconds) sidelined
    ``*.seg.superseded`` journals are kept for operator salvage before the
    scheduler deletes them; ``None`` disables the GC.
    """

    autosave_interval: float | None = 300.0
    incremental: bool = True
    compact_every: int = 8
    truncate_wal: bool = True
    superseded_retention: float | None = 604800.0

    def __post_init__(self) -> None:
        if self.autosave_interval is not None and self.autosave_interval <= 0:
            raise CrypTextError(
                f"autosave_interval must be positive (or None), "
                f"got {self.autosave_interval!r}"
            )
        if self.compact_every < 0:
            raise CrypTextError(
                f"compact_every must be >= 0, got {self.compact_every!r}"
            )
        if self.superseded_retention is not None and self.superseded_retention < 0:
            raise CrypTextError(
                f"superseded_retention must be >= 0 (or None), "
                f"got {self.superseded_retention!r}"
            )

    def to_dict(self) -> dict[str, object]:
        """Serialize for the maintenance status surface."""
        return {
            "autosave_interval": self.autosave_interval,
            "incremental": self.incremental,
            "compact_every": self.compact_every,
            "truncate_wal": self.truncate_wal,
            "superseded_retention": self.superseded_retention,
        }


class MaintenanceScheduler:
    """Drives snapshot refresh, compaction, and WAL truncation.

    Parameters
    ----------
    dictionary:
        The dictionary to persist.
    snapshot_dir:
        Directory of the base + delta chain (default
        ``config.snapshot_dir``; one of the two must be set).
    wal_dir / wal:
        Where the change log lives — pass an open :class:`ChangeLog` to
        share one, or a directory (default ``config.wal_dir``, else
        ``<snapshot_dir>/wal``) to open one.  The log is attached to the
        dictionary so every write between saves is journaled.
    policy:
        The :class:`MaintenancePolicy`; when omitted, one is derived from
        the dictionary's config (``snapshot_autosave_interval``).
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        dictionary: "PerturbationDictionary",
        snapshot_dir: str | Path | None = None,
        wal_dir: str | Path | None = None,
        wal: ChangeLog | None = None,
        policy: MaintenancePolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        config = dictionary.config
        if snapshot_dir is not None:
            self.snapshot_dir = Path(snapshot_dir)
        elif config.snapshot_dir is not None:
            self.snapshot_dir = Path(config.snapshot_dir)
        else:
            raise CrypTextError(
                "maintenance needs a snapshot directory: pass snapshot_dir "
                "or set config.snapshot_dir"
            )
        self.dictionary = dictionary
        if policy is not None:
            self.policy = policy
        elif config.snapshot_autosave_interval is not None:
            self.policy = MaintenancePolicy(
                autosave_interval=config.snapshot_autosave_interval,
                superseded_retention=config.wal_superseded_retention,
            )
        else:
            # An unset config interval means "use the scheduler default",
            # not "never save" — a scheduler whose every tick is a no-op
            # would silently void the durability the caller asked for.
            # Interval-driven saves are disabled only explicitly, by
            # passing MaintenancePolicy(autosave_interval=None).
            self.policy = MaintenancePolicy(
                superseded_retention=config.wal_superseded_retention
            )
        if wal is None:
            wal_dir = resolve_wal_directory(config, self.snapshot_dir, wal_dir)
            wal = dictionary.wal
            if wal is None or Path(wal.directory) != Path(wal_dir):
                wal = ChangeLog(wal_dir, segment_bytes=config.wal_segment_bytes)
        self.wal = wal
        if dictionary.wal is not wal:
            dictionary.attach_wal(wal)
        self._clock = clock
        # Two locks so observers never wait on a save: ``_save_lock``
        # serializes the actual snapshot work (potentially seconds), while
        # ``_state_lock`` guards only counters and anchors — ``status()``,
        # ``due_in()``, and a not-yet-due ``tick()`` stay O(1) even while a
        # background save is running.  Ordering: _save_lock outer,
        # _state_lock inner.
        self._save_lock = tracked_rlock("maintenance.save")
        self._state_lock = tracked_rlock("maintenance.state")  # reentrant: status() reads due_in()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_save_at: float | None = None
        self._started_at = clock()
        # Counters (the /v1/admin/maintenance status surface).
        self._ticks = 0
        self._autosaves = 0
        self._incremental_saves = 0
        self._full_saves = 0
        self._compactions = 0
        self._wal_truncations = 0
        self._superseded_removed = 0
        self._last_report: "SnapshotSaveReport | None" = None
        self._last_error: str | None = None

    # ------------------------------------------------------------------ #
    # the work items
    # ------------------------------------------------------------------ #
    def _snapshot_path(self) -> Path:
        return self.snapshot_dir / SNAPSHOT_FILE_NAME

    def save(self, incremental: bool | None = None) -> "SnapshotSaveReport":
        """Persist now: a delta when allowed and due, else a full rewrite.

        A full rewrite is forced every ``policy.compact_every`` saves —
        that *is* the compaction step, since a full save supersedes and
        removes the delta files — and is followed by WAL truncation
        through the snapshot's recorded position.
        """
        with self._save_lock:
            wants_delta = self.policy.incremental if incremental is None else incremental
            forced_compaction = False
            if (
                wants_delta
                and self.policy.compact_every
                and self.dictionary.dirty_state()["chain_deltas"]
                >= self.policy.compact_every
            ):
                wants_delta = False
                forced_compaction = True
            report = self.dictionary.save_snapshot(
                self._snapshot_path(), incremental=wants_delta
            )
            truncated = False
            if not report.incremental and self.policy.truncate_wal:
                self.wal.truncate_through(report.wal_seq)
                truncated = True
            if not report.incremental:
                # Full saves are the natural cadence for retiring sidelined
                # journals too — frequent enough to bound disk growth,
                # infrequent enough to stay off the ingest hot path.
                self.gc_superseded()
            with self._state_lock:
                self._last_save_at = self._clock()
                self._last_report = report
                if report.incremental:
                    self._incremental_saves += 1
                else:
                    self._full_saves += 1
                    if forced_compaction:
                        self._compactions += 1
                    if truncated:
                        self._wal_truncations += 1
            return report

    def compact(self) -> "SnapshotSaveReport":
        """Fold the delta chain into one full snapshot and truncate the WAL."""
        with self._save_lock:
            report = self.save(incremental=False)
            with self._state_lock:
                self._compactions += 1
            return report

    def truncate_wal(self) -> int:
        """Drop WAL segments covered by the last *full* snapshot on disk.

        Uses the base snapshot's recorded position (never a delta's), so a
        broken chain can still degrade to base + replay.  Returns segments
        deleted; 0 when no usable base exists.
        """
        from ..storage.snapshot import read_snapshot

        with self._save_lock:
            try:
                base = read_snapshot(self._snapshot_path())
            except SnapshotError:
                return 0
            deleted = self.wal.truncate_through(base.wal_seq)
            if deleted:
                with self._state_lock:
                    self._wal_truncations += 1
            return deleted

    def gc_superseded(self) -> int:
        """Delete ``*.seg.superseded`` journals older than the retention window.

        Returns how many were removed; 0 when the policy disables the GC
        (``superseded_retention=None``) or nothing has aged out yet.
        """
        retention = self.policy.superseded_retention
        if retention is None:
            return 0
        removed = gc_superseded_segments(self.wal.directory, retention)
        if removed:
            with self._state_lock:
                self._superseded_removed += removed
        return removed

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def due_in(self) -> float | None:
        """Seconds until the next interval-driven save (``None`` = disabled)."""
        interval = self.policy.autosave_interval
        if interval is None:
            return None
        with self._state_lock:
            anchor = self._last_save_at if self._last_save_at is not None else self._started_at
            return max(0.0, anchor + interval - self._clock())

    def tick(self) -> "SnapshotSaveReport | None":
        """Run whatever is due; cheap no-op otherwise.

        The cooperative hook called inline by the crawler loop and the
        batch engine's streaming generators.  Never waits on a save another
        thread is already performing (the work is being done; blocking the
        hot loop behind it would defeat the hook's purpose), and errors are
        recorded in the status surface instead of propagating.
        """
        with self._state_lock:
            self._ticks += 1
        due = self.due_in()
        if due is None or due > 0:
            return None
        if not self._save_lock.acquire(blocking=False):
            return None
        try:
            due = self.due_in()  # may have just been satisfied by the holder
            if due is None or due > 0:
                return None
            try:
                report = self.save()
            except (CrypTextError, WalError) as exc:
                with self._state_lock:
                    self._last_error = str(exc)
                    # Push the next attempt one interval out instead of
                    # retrying (and failing) on every subsequent tick.
                    self._last_save_at = self._clock()
                return None
            with self._state_lock:
                self._autosaves += 1
                self._last_error = None
            return report
        finally:
            self._save_lock.release()

    def run_now(self, task: str = "save") -> dict[str, object]:
        """Explicit trigger (the ``/v1/admin/maintenance`` POST surface).

        ``task`` is one of ``save`` (respects the incremental policy),
        ``full_save``, ``compact``, ``truncate_wal``, or ``gc_superseded``.
        """
        if task == "save":
            return {"task": task, "report": self.save().to_dict()}
        if task == "full_save":
            return {"task": task, "report": self.save(incremental=False).to_dict()}
        if task == "compact":
            return {"task": task, "report": self.compact().to_dict()}
        if task == "truncate_wal":
            return {"task": task, "segments_deleted": self.truncate_wal()}
        if task == "gc_superseded":
            return {"task": task, "segments_deleted": self.gc_superseded()}
        raise CrypTextError(
            f"unknown maintenance task {task!r} "
            "(expected save, full_save, compact, truncate_wal, or gc_superseded)"
        )

    def start(self, poll_interval: float = 1.0) -> None:
        """Spawn the background daemon thread (idempotent)."""
        if poll_interval <= 0:
            raise CrypTextError(f"poll_interval must be positive, got {poll_interval}")
        with self._state_lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop,
                args=(poll_interval,),
                name="cryptext-maintenance",
                daemon=True,
            )
            self._thread.start()

    def _loop(self, poll_interval: float) -> None:
        while not self._stop.wait(poll_interval):
            self.tick()

    def stop(self) -> None:
        """Stop the background thread (the cooperative hooks keep working)."""
        self._stop.set()
        with self._state_lock:
            thread = self._thread
        # Join outside the lock: the loop's tick() takes the save/state
        # locks, so joining while holding one could deadlock the shutdown.
        if thread is not None:
            thread.join(timeout=5.0)
        with self._state_lock:
            # Clear only our own handle — a concurrent start() may already
            # have installed a fresh thread we must not orphan.
            if self._thread is thread:
                self._thread = None

    @property
    def running(self) -> bool:
        """Whether the background thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def status(self) -> dict[str, object]:
        """Counters + due times + WAL/dirty state (the admin status surface).

        Takes only the state lock — readable mid-save (the admin "is it
        still running?" probe must not block behind the save itself).
        """
        with self._state_lock:
            return {
                "snapshot_dir": str(self.snapshot_dir),
                "policy": self.policy.to_dict(),
                "running": self.running,
                "ticks": self._ticks,
                "autosaves": self._autosaves,
                "incremental_saves": self._incremental_saves,
                "full_saves": self._full_saves,
                "compactions": self._compactions,
                "wal_truncations": self._wal_truncations,
                "superseded_removed": self._superseded_removed,
                "due_in_seconds": self.due_in(),
                "last_error": self._last_error,
                "last_save": (
                    self._last_report.to_dict() if self._last_report is not None else None
                ),
                "dirty": self.dictionary.dirty_state(),
                "wal": self.wal.stats().to_dict(),
            }
