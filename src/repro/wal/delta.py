"""Incremental delta snapshots: persist only what changed since the base.

A full warm-start snapshot (:mod:`repro.storage.snapshot`) re-serializes
every document and every trie family on every save — pure waste when a crawl
round touched forty buckets of forty thousand.  A **delta snapshot** captures
exactly the dirty slice:

* the **documents** (with their ``_id``\\ s) of every token written since the
  last save — replaced documents overwrite their base version by ``_id``,
  new documents append, so the ``str(_id)`` bucket order of a live
  collection survives resolution byte for byte;
* the re-serialized **trie families** of the dirty ``(level, key)`` buckets
  only, plus the bucket-table rows pointing at them;
* the **parent fingerprint** — the content fingerprint the dictionary had
  when the previous link (base or delta) was written.  Resolution refuses a
  chain whose fingerprints do not connect, which is how a delta written
  against a different base, or a base swapped underneath its deltas, is
  detected and degraded to full recompilation instead of silently merging
  wrong tries.

On disk a delta uses the same checksummed two-line envelope as a full
snapshot (:func:`repro.storage.snapshot.write_envelope`) with a ``kind``
marker, named ``dictionary.delta-NNNN.json`` next to the base file.
:func:`resolve_snapshot_chain` folds base + deltas into one in-memory
:class:`~repro.storage.snapshot.Snapshot`; :func:`compact_chain` writes that
merged snapshot back as the new base and removes the delta files.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..errors import SnapshotError
from ..storage.snapshot import (
    SNAPSHOT_FILE_NAME,
    SNAPSHOT_MANIFEST_NAME,
    MappedSnapshot,
    Snapshot,
    open_sharded_snapshot,
    read_envelope,
    read_snapshot,
    read_sharded_snapshot,
    sharded_manifest_info,
    sharded_snapshot_dir,
    write_envelope,
    write_sharded_snapshot,
    write_snapshot,
)

#: Delta file name pattern next to ``dictionary.snapshot.json``.
DELTA_FILE_GLOB = "dictionary.delta-*.json"

_DELTA_FILE_RE = re.compile(r"^dictionary\.delta-(\d{4,})\.json$")


def delta_path(directory: str | Path, index: int) -> Path:
    """Path of the ``index``-th delta file inside a snapshot directory."""
    if index < 1:
        raise SnapshotError(f"delta index must be >= 1, got {index}")
    return Path(directory) / f"dictionary.delta-{index:04d}.json"


def list_delta_paths(directory: str | Path) -> list[Path]:
    """Delta files of a snapshot directory in chain order.

    Raises :class:`~repro.errors.SnapshotError` when the numbering has a
    gap — a missing middle link makes every later delta unusable.
    """
    base = Path(directory)
    found: list[tuple[int, Path]] = []
    if base.is_dir():
        for path in base.glob(DELTA_FILE_GLOB):
            match = _DELTA_FILE_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
    found.sort()
    for expected, (index, path) in enumerate(found, start=1):
        if index != expected:
            raise SnapshotError(
                f"delta chain in {base} has a gap: expected delta {expected:04d}, "
                f"found {path.name}"
            )
    return [path for _, path in found]


@dataclass(frozen=True)
class DeltaSnapshot:
    """In-memory form of one delta link.

    Shapes mirror :class:`~repro.storage.snapshot.Snapshot`: ``documents``
    are full documents (upserted by ``_id`` at resolution), ``families`` are
    opaque trie payloads, ``buckets`` rows are ``(level, key, family_index)``
    with ``family_index`` addressing *this delta's* family list.
    """

    parent_fingerprint: str
    fingerprint: str
    dictionary_version: int
    wal_seq: int = 0
    documents: tuple[Mapping[str, Any], ...] = ()
    families: tuple[Mapping[str, Any], ...] = ()
    buckets: tuple[tuple[int, str, int], ...] = ()
    config: Mapping[str, Any] = field(default_factory=dict)

    def body(self) -> dict[str, Any]:
        """The checksummed envelope body."""
        return {
            "kind": "delta",
            "parent_fingerprint": self.parent_fingerprint,
            "fingerprint": self.fingerprint,
            "dictionary_version": self.dictionary_version,
            "wal_seq": self.wal_seq,
            "documents": list(self.documents),
            "families": list(self.families),
            "buckets": [list(bucket) for bucket in self.buckets],
            "config": dict(self.config),
        }

    @classmethod
    def from_body(cls, body: Mapping[str, Any], source: str = "<delta>") -> "DeltaSnapshot":
        """Rebuild a delta from a parsed envelope body; raises on bad shape."""
        if body.get("kind") != "delta":
            raise SnapshotError(f"{source}: not a delta snapshot (kind={body.get('kind')!r})")
        try:
            buckets = tuple(
                (int(level), str(key), int(family_index))
                for level, key, family_index in body["buckets"]
            )
            delta = cls(
                parent_fingerprint=str(body["parent_fingerprint"]),
                fingerprint=str(body["fingerprint"]),
                dictionary_version=int(body["dictionary_version"]),
                wal_seq=int(body.get("wal_seq", 0)),
                documents=tuple(body["documents"]),
                families=tuple(body["families"]),
                buckets=buckets,
                config=dict(body.get("config", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"{source}: malformed delta body: {exc}") from exc
        if not all(type(document) is dict for document in delta.documents):
            raise SnapshotError(f"{source}: delta documents must be objects")
        if not all(type(family) is dict for family in delta.families):
            raise SnapshotError(f"{source}: delta families must be objects")
        for level, key, family_index in delta.buckets:
            if not 0 <= family_index < len(delta.families):
                raise SnapshotError(
                    f"{source}: bucket ({level}, {key!r}) references family "
                    f"{family_index} of {len(delta.families)}"
                )
        return delta


def write_delta(path: str | Path, delta: DeltaSnapshot) -> Path:
    """Persist one delta atomically inside the standard envelope."""
    return write_envelope(path, delta.body())


def read_delta(path: str | Path) -> DeltaSnapshot:
    """Load and validate one delta file."""
    return DeltaSnapshot.from_body(read_envelope(path), source=str(path))


@dataclass(frozen=True)
class SnapshotChain:
    """A resolved base + delta chain.

    ``snapshot`` is the merged view (what a full snapshot written at the
    chain tip would contain); ``deltas_applied`` counts the links folded in.
    """

    snapshot: Snapshot
    base_path: str
    deltas_applied: int
    delta_paths: tuple[str, ...] = ()
    #: Set when the base was opened through ``mmap`` (v2 layout, no deltas,
    #: ``prefer_mapped``); holding the chain keeps the maps alive.
    mapped: MappedSnapshot | None = None


def _merge_chain(base: Snapshot, deltas: list[tuple[str, DeltaSnapshot]]) -> Snapshot:
    """Fold deltas into the base; validates fingerprint continuity."""
    tip_fingerprint = base.fingerprint
    documents: dict[str, Mapping[str, Any]] = {
        str(document.get("_id")): document for document in base.documents
    }
    # Family payloads accumulate; bucket rows point into the accumulated
    # list.  Orphaned families (their last referencing bucket re-pointed by
    # a later delta) are pruned at the end.
    families: list[Mapping[str, Any]] = list(base.families)
    bucket_rows: dict[tuple[int, str], int] = {
        (level, key): family_index for level, key, family_index in base.buckets
    }
    version = base.dictionary_version
    wal_seq = base.wal_seq
    config = dict(base.config)
    for source, delta in deltas:
        if delta.parent_fingerprint != tip_fingerprint:
            raise SnapshotError(
                f"{source}: delta chain fingerprint mismatch (parent "
                f"{delta.parent_fingerprint!r} does not continue {tip_fingerprint!r})"
            )
        offset = len(families)
        families.extend(delta.families)
        for document in delta.documents:
            documents[str(document.get("_id"))] = document
        for level, key, family_index in delta.buckets:
            bucket_rows[(level, key)] = offset + family_index
        tip_fingerprint = delta.fingerprint
        version = delta.dictionary_version
        wal_seq = delta.wal_seq
        if delta.config:
            config.update(delta.config)
    # Prune families no bucket references anymore and re-index the rows.
    referenced = sorted({family_index for family_index in bucket_rows.values()})
    remap = {old: new for new, old in enumerate(referenced)}
    merged_families = tuple(families[old] for old in referenced)
    merged_buckets = tuple(
        (level, key, remap[family_index])
        for (level, key), family_index in sorted(bucket_rows.items())
    )
    merged_documents = tuple(
        documents[doc_id] for doc_id in sorted(documents)
    )
    return Snapshot(
        dictionary_version=version,
        fingerprint=tip_fingerprint,
        config=config,
        documents=merged_documents,
        families=merged_families,
        buckets=merged_buckets,
        wal_seq=wal_seq,
    )


def resolve_snapshot_chain(
    directory: str | Path, strict: bool = True, prefer_mapped: bool = False
) -> SnapshotChain | None:
    """Resolve the snapshot base in ``directory`` plus its deltas.

    The base is the v2 sharded layout (``dictionary.snapshot.d/``) when a
    readable one exists, else the v1 ``dictionary.snapshot.json`` file —
    matching what the last save wrote.  With ``prefer_mapped`` true *and* no
    deltas pending, a v2 base is opened through ``mmap`` with lazy family
    materialization (the follower fast path); any delta forces the eager
    read because merging needs the full object graph anyway.

    Returns the merged chain, or — with ``strict`` false — ``None`` when no
    usable base exists.  A broken delta (corrupt file, fingerprint that does
    not continue the chain, numbering gap) always raises
    :class:`~repro.errors.SnapshotError` naming the offending link; callers
    that can degrade (crash recovery) catch it and retry base-only.
    """
    base_path = Path(directory) / SNAPSHOT_FILE_NAME
    shard_dir = sharded_snapshot_dir(base_path)
    delta_files = list_delta_paths(directory)
    mapped: MappedSnapshot | None = None
    try:
        if (shard_dir / SNAPSHOT_MANIFEST_NAME).is_file():
            try:
                if prefer_mapped and not delta_files:
                    mapped = open_sharded_snapshot(shard_dir)
                    base = mapped.snapshot
                else:
                    base = read_sharded_snapshot(shard_dir)
                base_source = str(shard_dir)
            except SnapshotError:
                if not base_path.is_file():
                    raise
                base = read_snapshot(base_path)
                base_source = str(base_path)
        else:
            base = read_snapshot(base_path)
            base_source = str(base_path)
    except SnapshotError:
        if strict:
            raise
        return None
    deltas = [(str(path), read_delta(path)) for path in delta_files]
    merged = base if mapped is not None else _merge_chain(base, deltas)
    return SnapshotChain(
        snapshot=merged,
        base_path=base_source,
        deltas_applied=len(deltas),
        delta_paths=tuple(source for source, _ in deltas),
        mapped=mapped,
    )


def remove_delta_files(directory: str | Path) -> int:
    """Delete every delta file in ``directory``; returns how many.

    Run after a full save or a compaction — stale deltas reference a base
    fingerprint that no longer exists and would fail (loudly) on the next
    resolution.
    """
    removed = 0
    base = Path(directory)
    if base.is_dir():
        for path in base.glob(DELTA_FILE_GLOB):
            if _DELTA_FILE_RE.match(path.name):
                path.unlink()
                removed += 1
    return removed


def compact_chain(directory: str | Path) -> SnapshotChain:
    """Fold the delta chain back into one full snapshot file.

    Pure file-level maintenance: resolves the chain, writes the merged
    snapshot over ``dictionary.snapshot.json`` (atomically), then deletes
    the delta files.  The WAL is *not* touched here — the caller truncates
    it through the merged snapshot's ``wal_seq`` once the new base is
    safely on disk.
    """
    chain = resolve_snapshot_chain(directory, strict=True)
    assert chain is not None
    base = Path(chain.base_path)
    if base.is_dir():
        # Sharded base: compact back into the same layout at the same width.
        shard_count = int(sharded_manifest_info(base).get("shard_count", 1))
        write_sharded_snapshot(base, chain.snapshot, max(1, shard_count))
    else:
        write_snapshot(base, chain.snapshot)
    remove_delta_files(directory)
    return chain
