"""Segmented append-only change log (WAL) for dictionary mutations.

Every recorded mutation of the perturbation dictionary — ``add_token``
directly, or anything built on it (``add_text`` / ``add_corpus`` /
``learn_from`` / crawler enrichment / lexicon seeding) — is journaled here
before the write is acknowledged, so a process killed mid-ingest can replay
exactly the tail of mutations its last snapshot missed.

On-disk layout
--------------
A log is a directory of segment files named ``wal-<first_seq>.seg``::

    wal/
        wal-00000000000000000001.seg
        wal-00000000000000004096.seg      <- active segment

Each segment is a sequence of framed records.  One record is::

    <length:8 hex chars><crc32:8 hex chars><payload bytes>\\n

where ``length`` is the byte length of the UTF-8 JSON payload and ``crc32``
covers exactly those payload bytes.  The payload is a JSON object carrying
the record's global sequence number plus the operation::

    {"seq": 17, "op": "add_token", "token": "vacc1ne", "source": "s", "count": 1}

The frame makes the tail self-validating: after a crash mid-append the last
record is cut short (truncated header, short payload, missing newline, or a
checksum mismatch), and :meth:`ChangeLog.iter_records` stops cleanly at the
last complete record instead of propagating garbage — that is the torn-tail
detection.  :meth:`ChangeLog.repair` physically truncates the torn bytes so
subsequent appends start from a clean frame boundary.

Replay is idempotent at the applier: every record carries a strictly
increasing ``seq``, the snapshot it complements records the last ``seq`` it
covers (:attr:`repro.storage.snapshot.Snapshot.wal_seq`), and
:meth:`iter_records` takes ``after_seq`` — so a record is applied exactly
once no matter how many times recovery runs over the same files.

Truncation (:meth:`ChangeLog.truncate_through`) removes whole segments whose
records are all covered by a full snapshot; the active tail segment is never
deleted in place, so appends continue seamlessly after maintenance.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

try:  # pragma: no cover - fcntl is present on every POSIX build
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from ..analysis.sanitizer import tracked_rlock
from ..errors import TornWrite, WalError
from ..obs.registry import OBS
from ..resilience.faults import FAULTS

#: Segment file name pattern: ``wal-<first_seq:020d>.seg``.
WAL_SEGMENT_GLOB = "wal-*.seg"

#: Frame header size: 8 hex chars of payload length + 8 hex chars of CRC-32.
_HEADER_BYTES = 16

#: Largest payload a frame may declare; a header pointing past this is
#: treated as corruption (a torn or foreign tail), not an allocation request.
_MAX_PAYLOAD_BYTES = 1 << 28


def wal_directory_for(snapshot_dir: str | Path) -> Path:
    """Conventional WAL location next to a snapshot directory (``<dir>/wal``)."""
    return Path(snapshot_dir) / "wal"


def resolve_wal_directory(
    config, snapshot_dir: str | Path, override: str | Path | None = None
) -> Path:
    """The one WAL-location rule every entry point shares.

    Precedence: an explicit ``override`` beats ``config.wal_dir`` beats the
    conventional ``<snapshot_dir>/wal`` sibling.  Recovery, the maintenance
    scheduler, and the CLI all resolve through here so they can never
    disagree about which journal belongs to a snapshot directory.
    """
    if override is not None:
        return Path(override)
    configured = getattr(config, "wal_dir", None)
    if configured is not None:
        return Path(configured)
    return wal_directory_for(snapshot_dir)


def supersede_wal_segments(wal_dir: str | Path) -> int:
    """Sideline every segment file in ``wal_dir``; returns how many.

    For superseding a journal when a base snapshot recording ``wal_seq=0``
    is written over the directory (a rebuild, a WAL-less full save): old
    segments must not replay on top of the new base.  Segments are
    *renamed* (``.superseded`` suffix) rather than deleted — replay and
    ``scan`` no longer see them, but if the save that triggered this was
    itself working from stale inputs (e.g. a JSONL fallback behind a
    corrupt base), the journaled history is still on disk for an operator
    to salvage.  Never use on a log that is currently attached — truncate
    through a covered position instead.
    """
    sidelined = 0
    base = Path(wal_dir)
    if base.is_dir():
        for segment in sorted(base.glob(WAL_SEGMENT_GLOB)):
            segment.rename(segment.with_name(segment.name + ".superseded"))
            sidelined += 1
    return sidelined


def gc_superseded_segments(
    wal_dir: str | Path, retention_seconds: float, now: float | None = None
) -> int:
    """Delete ``*.seg.superseded`` files older than the retention window.

    Sidelined segments exist for operator salvage, not forever; once their
    modification time is more than ``retention_seconds`` in the past they
    are deleted.  Returns how many were removed.  ``now`` (wall-clock
    seconds, as from :func:`time.time`) is injectable for tests; files at
    *exactly* the retention boundary are kept — only strictly older ones go.
    """
    if retention_seconds < 0:
        raise WalError(
            f"retention_seconds must be >= 0, got {retention_seconds!r}"
        )
    cutoff = (time.time() if now is None else now) - retention_seconds
    removed = 0
    base = Path(wal_dir)
    if base.is_dir():
        for path in sorted(base.glob(WAL_SEGMENT_GLOB + ".superseded")):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue  # raced with another collector; nothing to do
            if mtime < cutoff:
                try:
                    path.unlink()
                except OSError as exc:
                    raise WalError(f"failed to delete {path}: {exc}") from exc
                removed += 1
    return removed


class SingleWriterGuard:
    """An ``flock``-based exclusive lock on a WAL directory.

    Two processes appending to the same journal interleave frames and
    corrupt the sequence ordering silently; this guard makes the second
    writer fail loudly instead.  The lock file (``wal.lock``) lives inside
    the WAL directory and is held for the guard's lifetime — use as a
    context manager or call :meth:`release` explicitly.  ``flock`` locks
    conflict between file descriptors even within one process, so acquire
    exactly one guard per leader, at the replication/CLI entry point, not
    per :class:`ChangeLog` handle.

    On platforms without :mod:`fcntl` the guard degrades to a no-op (the
    reproduction targets POSIX; Windows users lose the loud failure, not
    correctness of a single-writer deployment).
    """

    LOCK_FILE_NAME = "wal.lock"

    def __init__(self, wal_dir: str | Path) -> None:
        self.directory = Path(wal_dir)
        self.path = self.directory / self.LOCK_FILE_NAME
        self._handle = None
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            handle = self.path.open("a")
        except OSError as exc:
            raise WalError(f"cannot open WAL lock file {self.path}: {exc}") from exc
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            handle.close()
            return
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            raise WalError(
                f"WAL directory {self.directory} already has an active writer "
                f"(lock {self.path} is held); refusing to start a second one"
            ) from None
        self._handle = handle

    @property
    def held(self) -> bool:
        """Whether this guard currently holds the lock."""
        return self._handle is not None

    def release(self) -> None:
        """Drop the lock (idempotent)."""
        if self._handle is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - unlock failures are benign
                pass
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SingleWriterGuard":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


@dataclass(frozen=True)
class WalRecord:
    """One journaled mutation."""

    seq: int
    op: str
    payload: Mapping[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """Serialize (the exact payload object written to disk)."""
        body = {"seq": self.seq, "op": self.op}
        body.update(self.payload)
        return body

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "WalRecord":
        """Rebuild a record from a decoded payload; raises on malformed shape."""
        try:
            seq = int(body["seq"])
            op = str(body["op"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WalError(f"malformed WAL record payload: {exc}") from exc
        payload = {key: value for key, value in body.items() if key not in ("seq", "op")}
        return cls(seq=seq, op=op, payload=payload)


@dataclass(frozen=True)
class WalStats:
    """Aggregate state of one change log (the ``wal info`` view)."""

    directory: str
    segments: int
    records: int
    first_seq: int
    last_seq: int
    total_bytes: int
    torn_bytes: int

    def to_dict(self) -> dict[str, object]:
        """Serialize for the CLI, the service stats, and monitoring."""
        return {
            "directory": self.directory,
            "segments": self.segments,
            "records": self.records,
            "first_seq": self.first_seq,
            "last_seq": self.last_seq,
            "total_bytes": self.total_bytes,
            "torn_bytes": self.torn_bytes,
        }


def encode_record(record: WalRecord) -> bytes:
    """Frame one record: length + CRC-32 header, payload, newline."""
    payload = json.dumps(
        record.to_dict(), ensure_ascii=False, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    header = f"{len(payload):08x}{zlib.crc32(payload) & 0xFFFFFFFF:08x}".encode("ascii")
    return header + payload + b"\n"


def decode_segment(data: bytes) -> tuple[list[WalRecord], int]:
    """Decode every complete record of a segment's bytes.

    Returns ``(records, valid_bytes)`` where ``valid_bytes`` is the offset
    of the first incomplete/corrupt frame (== ``len(data)`` for a clean
    segment).  Everything from ``valid_bytes`` on is the torn tail a crash
    mid-append left behind; it is reported, never parsed.
    """
    records: list[WalRecord] = []
    position = 0
    total = len(data)
    while position < total:
        header = data[position : position + _HEADER_BYTES]
        if len(header) < _HEADER_BYTES:
            break
        try:
            length = int(header[:8], 16)
            recorded_crc = int(header[8:], 16)
        except ValueError:
            break
        if length > _MAX_PAYLOAD_BYTES:
            break
        payload_start = position + _HEADER_BYTES
        payload_end = payload_start + length
        if payload_end + 1 > total:
            break
        payload = data[payload_start:payload_end]
        if data[payload_end : payload_end + 1] != b"\n":
            break
        if zlib.crc32(payload) & 0xFFFFFFFF != recorded_crc:
            break
        try:
            body = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(body, dict):
            break
        try:
            record = WalRecord.from_dict(body)
        except WalError:
            break
        records.append(record)
        position = payload_end + 1
    return records, position


@dataclass
class _Segment:
    """In-memory bookkeeping for one segment file."""

    path: Path
    first_seq: int  # seq the segment was opened at (== its name)
    last_seq: int  # last complete record's seq (first_seq - 1 when empty)
    size: int  # valid (non-torn) bytes
    records: int


class ChangeLog:
    """Append-only, segmented, checksummed journal of dictionary mutations.

    Parameters
    ----------
    directory:
        Directory holding the segment files (created as needed).
    segment_bytes:
        Rotation threshold: a new segment starts once the active one
        reaches this size.
    fsync:
        Force an ``os.fsync`` after every append.  Off by default — the
        reproduction favors throughput, and the frame format already
        guarantees a torn tail is detected rather than misread.
    fsync_batch:
        Group-commit middle ground: ``os.fsync`` once every N appends
        (and whenever the active segment handle is released) instead of
        on every one.  ``0`` (the default) disables batching; ignored
        when ``fsync`` is set, which already syncs every append.  Because
        appends go through a single ``O_APPEND`` handle in order, a crash
        between batch syncs can only lose a suffix of unsynced frames —
        the decoded log is always a contiguous prefix, never a log with
        an interior gap.

    Opening a directory scans existing segments, validates their frames,
    and — when the last segment carries a torn tail — truncates it
    (:meth:`repair`) so appends resume from a clean boundary.  A torn frame
    in the *interior* of the segment list (a non-final segment that does not
    end cleanly) raises :class:`~repro.errors.WalError`: records after a
    tear cannot be trusted, and only a crash on the final segment is a
    normal outcome.
    """

    def __init__(
        self,
        directory: str | Path,
        segment_bytes: int = 1 << 20,
        fsync: bool = False,
        fsync_batch: int = 0,
    ) -> None:
        if segment_bytes < 1:
            raise WalError(f"segment_bytes must be >= 1, got {segment_bytes}")
        if fsync_batch < 0:
            raise WalError(f"fsync_batch must be >= 0, got {fsync_batch}")
        self.directory = Path(directory)
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        self.fsync_batch = fsync_batch
        self._unsynced_appends = 0
        self._lock = tracked_rlock("wal.segment")
        self._closed = False
        self._torn_bytes_repaired = 0
        # Persistent O_APPEND handle on the active segment: journaling runs
        # inside the dictionary's write lock, so paying an open/close pair
        # of syscalls per record would serialize the entire ingest hot
        # path.  Invalidated whenever the active segment changes or is
        # deleted (rotation, truncation, reset).
        self._handle = None
        self._handle_path: Path | None = None
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise WalError(f"cannot create WAL directory {self.directory}: {exc}") from exc
        self._segments: list[_Segment] = []
        self._scan()
        self.repair()

    # ------------------------------------------------------------------ #
    # discovery & repair
    # ------------------------------------------------------------------ #
    def _segment_paths(self) -> list[Path]:
        return sorted(self.directory.glob(WAL_SEGMENT_GLOB))

    @staticmethod
    def _segment_path(directory: Path, first_seq: int) -> Path:
        return directory / f"wal-{first_seq:020d}.seg"

    def _scan(self) -> None:  # lint: allow=unguarded-write (runs in __init__, pre-sharing)
        segments: list[_Segment] = []
        paths = self._segment_paths()
        for index, path in enumerate(paths):
            stem = path.stem  # "wal-<digits>"
            try:
                first_seq = int(stem.split("-", 1)[1])
            except (IndexError, ValueError) as exc:
                raise WalError(f"foreign file in WAL directory: {path}") from exc
            try:
                data = path.read_bytes()
            except OSError as exc:
                raise WalError(f"failed to read WAL segment {path}: {exc}") from exc
            records, valid = decode_segment(data)
            if valid < len(data) and index < len(paths) - 1:
                raise WalError(
                    f"WAL segment {path} is corrupt mid-log ({len(data) - valid} "
                    f"bad bytes before the final segment); refusing to replay past it"
                )
            for previous, record in zip([first_seq - 1] + [r.seq for r in records], records):
                if record.seq != previous + 1:
                    raise WalError(
                        f"WAL segment {path}: sequence gap ({previous} -> {record.seq})"
                    )
            segments.append(
                _Segment(
                    path=path,
                    first_seq=first_seq,
                    last_seq=records[-1].seq if records else first_seq - 1,
                    size=valid,
                    records=len(records),
                )
            )
        for left, right in zip(segments, segments[1:]):
            if right.first_seq != left.last_seq + 1:
                raise WalError(
                    f"WAL segments are not contiguous: {left.path.name} ends at "
                    f"seq {left.last_seq} but {right.path.name} starts at "
                    f"{right.first_seq}"
                )
        self._segments = segments

    def repair(self) -> int:
        """Truncate the torn tail of the final segment, if any.

        Returns the number of bytes discarded (0 for a clean log).  Called
        automatically on open; safe to call again at any time.  The tail is
        re-read and re-decoded *at repair time* — truncating from stale
        scan-time bookkeeping could cut off complete frames another handle
        appended in between (a read-only command opening the log of a
        still-running writer), so only bytes that do not decode right now
        are ever discarded, and the in-memory bookkeeping is refreshed to
        whatever the fresh decode found.
        """
        with self._lock:
            if not self._segments:
                return 0
            tail = self._segments[-1]
            try:
                data = tail.path.read_bytes()
            except OSError as exc:
                raise WalError(f"failed to read WAL segment {tail.path}: {exc}") from exc
            records, valid = decode_segment(data)
            torn = len(data) - valid
            if torn > 0:
                try:
                    with tail.path.open("r+b") as handle:
                        handle.truncate(valid)
                except OSError as exc:
                    raise WalError(
                        f"failed to repair WAL segment {tail.path}: {exc}"
                    ) from exc
                self._torn_bytes_repaired += torn
            tail.size = valid
            tail.records = len(records)
            tail.last_seq = records[-1].seq if records else tail.first_seq - 1
            return max(0, torn)

    # ------------------------------------------------------------------ #
    # appends
    # ------------------------------------------------------------------ #
    @property
    def last_seq(self) -> int:
        """Sequence number of the last complete record (0 when empty)."""
        with self._lock:
            return self._segments[-1].last_seq if self._segments else 0

    def append(self, op: str, payload: Mapping[str, Any]) -> WalRecord:
        """Journal one mutation; returns the record with its assigned ``seq``.

        Thread-safe; rotates to a fresh segment once the active one has
        reached :attr:`segment_bytes`.
        """
        if OBS.armed:
            with OBS.span("wal.append"):
                return self._append(op, payload)
        return self._append(op, payload)

    def _append(self, op: str, payload: Mapping[str, Any]) -> WalRecord:
        with self._lock:
            if self._closed:
                raise WalError("cannot append to a closed change log")
            next_seq = self.last_seq + 1
            record = WalRecord(seq=next_seq, op=op, payload=dict(payload))
            frame = encode_record(record)
            if not self._segments or self._segments[-1].size >= self.segment_bytes:
                path = self._segment_path(self.directory, next_seq)
                self._segments.append(
                    _Segment(
                        path=path,
                        first_seq=next_seq,
                        last_seq=next_seq - 1,
                        size=0,
                        records=0,
                    )
                )
            tail = self._segments[-1]
            try:
                handle = self._tail_handle_locked(tail.path)
                if FAULTS.armed:
                    self._inject_append_fault_locked(handle, frame, tail)
                handle.write(frame)
                handle.flush()
                if self.fsync:
                    self._fsync_locked(handle)
                elif self.fsync_batch:
                    self._unsynced_appends += 1
                    if self._unsynced_appends >= self.fsync_batch:
                        self._fsync_locked(handle)
                        self._unsynced_appends = 0
            except OSError as exc:
                self._drop_handle_locked()
                # A failed write may have left a partial frame *mid-segment*;
                # later appends landing after it would be acknowledged yet
                # unreachable (decoding stops at the tear).  Roll the file
                # back to the last known-good boundary — and if even that
                # fails, refuse all further appends rather than acknowledge
                # writes that recovery would silently destroy.
                try:
                    if tail.path.exists():
                        with tail.path.open("r+b") as rollback:
                            rollback.truncate(tail.size)
                    # else: the segment file was never created (the open
                    # itself failed) — nothing on disk to roll back, and the
                    # log stays usable for a retry.
                except OSError:
                    self._closed = True
                raise WalError(f"failed to append to {tail.path}: {exc}") from exc
            tail.last_seq = next_seq
            tail.size += len(frame)
            tail.records += 1
            return record

    def _fsync_locked(self, handle) -> None:
        """Fsync ``handle`` through the fault point and the timing span.

        Callers hold the segment lock; the fsync itself stays a single
        syscall so the lock is held no longer than before.
        """
        if FAULTS.armed:
            FAULTS.hit("wal.fsync")
        if OBS.armed:
            with OBS.span("wal.fsync"):
                os.fsync(handle.fileno())
            return
        os.fsync(handle.fileno())

    def _inject_append_fault_locked(self, handle, frame: bytes, tail: "_Segment") -> None:
        """Trigger the ``wal.append`` fault point (armed registries only).

        Plain injected IO errors raise :class:`InjectedIOError` and flow
        through the ordinary ``except OSError`` rollback below.  A
        :class:`TornWrite` is cooperative: persist a genuine partial frame,
        then fail the log as if the process died mid-append — the next
        ``ChangeLog`` over this directory must repair the torn tail.
        """
        try:
            FAULTS.hit("wal.append")
        except TornWrite as fault:
            keep = fault.keep_bytes if fault.keep_bytes is not None else len(frame) // 2
            keep = max(0, min(keep, len(frame) - 1))
            handle.write(frame[:keep])
            handle.flush()
            self._drop_handle_locked()
            self._closed = True
            raise WalError(
                f"injected torn write: {keep} of {len(frame)} bytes reached "
                f"{tail.path.name} before the simulated crash"
            ) from fault

    def _tail_handle_locked(self, path: Path):
        """The persistent append handle for the active segment."""
        if self._handle is None or self._handle_path != path:
            self._drop_handle_locked()
            self._handle = path.open("ab")
            self._handle_path = path
        return self._handle

    def _drop_handle_locked(self) -> None:
        if self._handle is not None:
            try:
                if self._unsynced_appends:
                    # Best-effort: releasing the handle (rotation, close,
                    # truncation) flushes a pending batch so group commit
                    # never widens the loss window past the configured N.
                    os.fsync(self._handle.fileno())
            except OSError:  # pragma: no cover - sync-on-release is advisory
                pass
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - close failures are benign
                pass
        self._handle = None
        self._handle_path = None
        self._unsynced_appends = 0

    def sync(self) -> None:
        """Flush any batched, not-yet-fsynced appends to stable storage."""
        with self._lock:
            if self._handle is not None and self._unsynced_appends:
                try:
                    self._fsync_locked(self._handle)
                except OSError as exc:
                    raise WalError(
                        f"failed to sync {self._handle_path}: {exc}"
                    ) from exc
                self._unsynced_appends = 0

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def iter_records(self, after_seq: int = 0) -> Iterator[WalRecord]:
        """Yield every complete record with ``seq > after_seq``, in order.

        Reads segment files fresh from disk (so an external reader sees
        appends made by another handle) and stops silently at a torn tail
        on the final segment — the crash-recovery contract.
        """
        with self._lock:
            segments = [
                segment for segment in self._segments if segment.last_seq > after_seq
            ]
        for segment in segments:
            try:
                data = segment.path.read_bytes()
            except OSError as exc:
                raise WalError(f"failed to read WAL segment {segment.path}: {exc}") from exc
            records, _ = decode_segment(data)
            for record in records:
                if record.seq > after_seq:
                    yield record

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def truncate_through(self, seq: int) -> int:
        """Delete whole segments whose records are all covered by ``seq``.

        The maintenance hook run after a full snapshot: records with
        ``seq' <= seq`` are folded into the snapshot and never replayed
        again.  Only complete segments are removed — the frame format has
        no in-place splice — so some covered records may survive in the
        first retained segment; replay skips them by sequence anyway.
        Returns the number of segments deleted.
        """
        with self._lock:
            self._drop_handle_locked()
            deleted = 0
            while len(self._segments) > 1 and self._segments[0].last_seq <= seq:
                segment = self._segments[0]
                try:
                    segment.path.unlink()
                except OSError as exc:
                    raise WalError(f"failed to delete {segment.path}: {exc}") from exc
                self._segments.pop(0)
                deleted += 1
            # The final segment may be fully covered too — drop it only when
            # completely consumed, keeping the seq counter monotonic by
            # rotating to a fresh segment that starts past it.
            if (
                self._segments
                and self._segments[0].last_seq <= seq
                and self._segments[0].records > 0
            ):
                segment = self._segments[0]
                next_seq = segment.last_seq + 1
                try:
                    segment.path.unlink()
                except OSError as exc:
                    raise WalError(f"failed to delete {segment.path}: {exc}") from exc
                self._segments.pop(0)
                deleted += 1
                fresh = self._segment_path(self.directory, next_seq)
                try:
                    fresh.touch()
                except OSError as exc:
                    raise WalError(f"failed to create {fresh}: {exc}") from exc
                self._segments.append(
                    _Segment(
                        path=fresh,
                        first_seq=next_seq,
                        last_seq=next_seq - 1,
                        size=0,
                        records=0,
                    )
                )
            return deleted

    def reset(self, next_seq_floor: int | None = None) -> None:
        """Delete every segment (a new epoch: the journal no longer applies).

        Called when the dictionary is wholesale replaced from a snapshot
        that did not come from this log's history — replaying the old
        records over the new state would corrupt it.  ``next_seq_floor``
        guarantees the next assigned sequence number exceeds it: a loaded
        snapshot recording ``wal_seq=K`` (from whatever journal produced
        it) must never shadow future records, which replay filters with
        ``seq > K``.
        """
        with self._lock:
            self._drop_handle_locked()
            floor = max(self.last_seq, next_seq_floor or 0)
            for segment in self._segments:
                try:
                    segment.path.unlink()
                except OSError as exc:
                    raise WalError(f"failed to delete {segment.path}: {exc}") from exc
            self._segments = []
            if floor:
                fresh = self._segment_path(self.directory, floor + 1)
                try:
                    fresh.touch()
                except OSError as exc:
                    raise WalError(f"failed to create {fresh}: {exc}") from exc
                self._segments = [
                    _Segment(
                        path=fresh,
                        first_seq=floor + 1,
                        last_seq=floor,
                        size=0,
                        records=0,
                    )
                ]

    def ensure_seq_at_least(self, seq: int) -> None:
        """Guarantee the next assigned sequence number exceeds ``seq``.

        No-op when the log is already past ``seq``.  Otherwise every
        existing record has ``seq' <= seq`` — covered by the snapshot that
        recorded ``seq``, hence skippable — so the log is reset with the
        floor raised.
        """
        with self._lock:
            if self.last_seq < seq:
                self.reset(next_seq_floor=seq)

    def close(self) -> None:
        """Refuse further appends (reads keep working)."""
        with self._lock:
            self._drop_handle_locked()
            self._closed = True

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> WalStats:
        """Aggregate counters over the current segment list."""
        with self._lock:
            records = sum(segment.records for segment in self._segments)
            populated = [s for s in self._segments if s.records]
            return WalStats(
                directory=str(self.directory),
                segments=len(self._segments),
                records=records,
                first_seq=populated[0].first_seq if populated else 0,
                last_seq=self.last_seq,
                total_bytes=sum(segment.size for segment in self._segments),
                torn_bytes=self._torn_bytes_repaired,
            )

    @classmethod
    def scan(cls, directory: str | Path) -> WalStats:
        """Read-only inspection of a WAL directory (the ``wal info`` path).

        Unlike opening a :class:`ChangeLog`, this never repairs the tail or
        creates the directory; the torn byte count reports what a repair
        *would* discard.
        """
        base = Path(directory)
        if not base.is_dir():
            raise WalError(f"no such WAL directory: {base}")
        segments = 0
        records = 0
        first_seq = 0
        last_seq = 0
        total_bytes = 0
        torn = 0
        for path in sorted(base.glob(WAL_SEGMENT_GLOB)):
            try:
                data = path.read_bytes()
            except OSError as exc:
                raise WalError(f"failed to read WAL segment {path}: {exc}") from exc
            decoded, valid = decode_segment(data)
            segments += 1
            records += len(decoded)
            total_bytes += len(data)
            torn += len(data) - valid
            if decoded:
                if first_seq == 0:
                    first_seq = decoded[0].seq
                last_seq = decoded[-1].seq
        return WalStats(
            directory=str(base),
            segments=segments,
            records=records,
            first_seq=first_seq,
            last_seq=last_seq,
            total_bytes=total_bytes,
            torn_bytes=torn,
        )
