"""Durability subsystem: change log, delta snapshots, crash recovery, maintenance.

The warm-start snapshot subsystem (:mod:`repro.storage.snapshot`) made
restarts fast, but every save was a full rewrite and every unclean shutdown
lost all mutations since the last save.  This package closes that gap:

* :mod:`repro.wal.log` — a **segmented append-only change log** journaling
  every dictionary mutation as a length-prefixed, checksummed record, with
  segment rotation, torn-tail detection, and ordered replay;
* :mod:`repro.wal.delta` — **incremental delta snapshots**: only the trie
  families whose buckets changed since the base snapshot are re-serialized,
  into a delta file that references its parent by content fingerprint and is
  resolved by chaining base + deltas (with compaction folding the chain back
  into one full snapshot);
* **crash recovery** —
  :meth:`repro.core.dictionary.PerturbationDictionary.recover` hydrates the
  base + delta chain and replays the WAL tail past the snapshot's recorded
  log position, so a ``kill -9`` mid-ingest loses nothing;
* :mod:`repro.wal.maintenance` — a **background scheduler** driving
  interval/TTL auto-saves, delta compaction, and WAL truncation for the
  crawler, listener, batch-engine, and service loops.
"""

from .log import (
    WAL_SEGMENT_GLOB,
    ChangeLog,
    SingleWriterGuard,
    WalRecord,
    WalStats,
    gc_superseded_segments,
    resolve_wal_directory,
    supersede_wal_segments,
    wal_directory_for,
)
from .delta import (
    DELTA_FILE_GLOB,
    DeltaSnapshot,
    SnapshotChain,
    compact_chain,
    delta_path,
    list_delta_paths,
    read_delta,
    remove_delta_files,
    resolve_snapshot_chain,
    write_delta,
)
from .maintenance import MaintenancePolicy, MaintenanceScheduler

__all__ = [
    "WAL_SEGMENT_GLOB",
    "ChangeLog",
    "SingleWriterGuard",
    "WalRecord",
    "WalStats",
    "gc_superseded_segments",
    "resolve_wal_directory",
    "supersede_wal_segments",
    "wal_directory_for",
    "DELTA_FILE_GLOB",
    "DeltaSnapshot",
    "SnapshotChain",
    "compact_chain",
    "delta_path",
    "list_delta_paths",
    "read_delta",
    "remove_delta_files",
    "resolve_snapshot_chain",
    "write_delta",
    "MaintenancePolicy",
    "MaintenanceScheduler",
]
