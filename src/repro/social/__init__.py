"""Simulated social platforms, the stream crawler, and Social Listening.

The original CrypText monitors Reddit through the PushShift API and enriches
its database from Twitter's public stream (paper §III-E/F).  Neither service
is reachable offline, so this subpackage simulates them:

* :class:`repro.social.SocialPlatform` — an in-process platform holding
  posts in a document store and exposing the two operations CrypText uses:
  keyword **search** (PushShift-style, with date filtering) and a
  chronological **stream** (Twitter-style) for the crawler;
* :class:`repro.social.StreamCrawler` — the background crawler that pulls
  batches from a platform stream and feeds newly observed tokens into the
  perturbation dictionary;
* :class:`repro.social.SocialListener` — the Social Listening function:
  expand keywords with their perturbations, search the platform, and
  aggregate per-day frequency and sentiment timelines;
* :class:`repro.social.MultiPlatformListener` — the paper's stated future
  work: the same monitoring fanned out across several platforms and merged;
* :class:`repro.social.ModerationPipeline` — the content-moderation use
  case: catch abusive posts whose perturbations evade a toxicity model.
"""

from .platform import SearchResult, SocialPlatform
from .crawler import CrawlReport, StreamCrawler
from .listening import (
    KeywordUsage,
    MultiPlatformListener,
    SocialListener,
    TimelinePoint,
)
from .moderation import ModerationPipeline, ModerationReport, ModerationVerdict

__all__ = [
    "SocialPlatform",
    "SearchResult",
    "StreamCrawler",
    "CrawlReport",
    "SocialListener",
    "MultiPlatformListener",
    "KeywordUsage",
    "TimelinePoint",
    "ModerationPipeline",
    "ModerationReport",
    "ModerationVerdict",
]
