"""Stream crawler: continual enrichment of the perturbation dictionary.

Paper §III-F / §IV: "we set up a crawler that regularly collects recent
tweets (via Twitter's public stream API) to continually enrich CrypText's
database with novel perturbed tokens online", so the system is "constantly
learning new perturbations".

:class:`StreamCrawler` reproduces that loop against a simulated platform:
each :meth:`crawl_once` pulls one batch from the platform stream, feeds every
post text into the dictionary, and reports how many new raw tokens and new
phonetic keys appeared — the statistic behind the ``db_stats`` growth
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.dictionary import PerturbationDictionary
from ..errors import CrawlerError
from .platform import SocialPlatform

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from ..batch import BatchEngine
    from ..wal.maintenance import MaintenanceScheduler


@dataclass(frozen=True)
class CrawlReport:
    """Summary of one crawl round."""

    round_index: int
    posts_processed: int
    tokens_seen: int
    new_tokens: int
    new_keys: int
    dictionary_size: int
    unique_keys: int
    shards_touched: tuple[int, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict[str, object]:
        """Serialize for the growth benchmark and monitoring exports."""
        return {
            "round_index": self.round_index,
            "posts_processed": self.posts_processed,
            "tokens_seen": self.tokens_seen,
            "new_tokens": self.new_tokens,
            "new_keys": self.new_keys,
            "dictionary_size": self.dictionary_size,
            "unique_keys": self.unique_keys,
            "shards_touched": list(self.shards_touched),
        }


class StreamCrawler:
    """Pulls platform stream batches into the perturbation dictionary.

    Parameters
    ----------
    platform:
        The platform to crawl.
    dictionary:
        The dictionary to enrich.
    batch_size:
        Posts per crawl round.
    source_label:
        Source tag recorded on every dictionary entry added by this crawler.
    batch_engine:
        Optional batch engine.  When present, each round is ingested through
        :meth:`BatchEngine.enrich`, which keeps the sharded phonetic index
        synchronized and invalidates exactly the cached queries whose sound
        buckets the round changed (instead of serving an always-on reader
        population stale or cold results).
    scheduler:
        Optional :class:`~repro.wal.maintenance.MaintenanceScheduler`.
        When present, every crawl round ends with a cooperative
        :meth:`~repro.wal.maintenance.MaintenanceScheduler.tick`, so a
        long-running enrichment loop periodically persists its warm state
        (incremental snapshot + WAL upkeep) without a background thread —
        the auto-save hook.
    """

    def __init__(
        self,
        platform: SocialPlatform,
        dictionary: PerturbationDictionary,
        batch_size: int = 200,
        source_label: str | None = None,
        batch_engine: "BatchEngine | None" = None,
        scheduler: "MaintenanceScheduler | None" = None,
    ) -> None:
        if batch_size < 1:
            raise CrawlerError(f"batch_size must be >= 1, got {batch_size}")
        if batch_engine is not None and batch_engine.dictionary is not dictionary:
            raise CrawlerError("batch_engine must wrap the same dictionary")
        self.platform = platform
        self.dictionary = dictionary
        self.batch_size = batch_size
        self.source_label = source_label or f"{platform.name}_stream"
        if scheduler is not None and scheduler.dictionary is not dictionary:
            raise CrawlerError("scheduler must maintain the same dictionary")
        self.batch_engine = batch_engine
        self.scheduler = scheduler
        self._cursor = 0
        self._rounds = 0
        self.history: list[CrawlReport] = []

    @property
    def cursor(self) -> int:
        """Last consumed ``post_id``."""
        return self._cursor

    @property
    def rounds_completed(self) -> int:
        """Number of crawl rounds executed so far."""
        return self._rounds

    # ------------------------------------------------------------------ #
    def crawl_once(self) -> CrawlReport | None:
        """Consume one batch from the stream; ``None`` when it is exhausted."""
        stream = self.platform.stream(
            batch_size=self.batch_size, after_post_id=self._cursor
        )
        try:
            batch = next(stream)
        except StopIteration:
            # An exhausted stream still persists what the previous rounds
            # ingested — a crawl that ends exactly on a batch boundary must
            # not leave its last rounds only in the WAL longer than a
            # snapshot interval.
            if self.scheduler is not None:
                self.scheduler.tick()
            return None
        stats_before = self.dictionary.stats()
        level = self.dictionary.config.phonetic_level
        texts = [str(post["text"]) for post in batch]
        shards_touched: tuple[int, ...] = ()
        if self.batch_engine is not None:
            enrichment = self.batch_engine.enrich(texts, source=self.source_label)
            tokens_seen = enrichment.added
            shards_touched = tuple(sorted(enrichment.shards_touched))
        else:
            tokens_seen = sum(
                self.dictionary.add_text(text, source=self.source_label)
                for text in texts
            )
        stats_after = self.dictionary.stats()
        self._cursor = int(batch[-1]["post_id"])
        self._rounds += 1
        report = CrawlReport(
            round_index=self._rounds,
            posts_processed=len(batch),
            tokens_seen=tokens_seen,
            new_tokens=stats_after.total_tokens - stats_before.total_tokens,
            new_keys=stats_after.unique_keys[level] - stats_before.unique_keys[level],
            dictionary_size=stats_after.total_tokens,
            unique_keys=stats_after.unique_keys[level],
            shards_touched=shards_touched,
        )
        self.history.append(report)
        if self.scheduler is not None:
            # Cooperative auto-save: a cheap no-op until the configured
            # interval elapses, then an incremental snapshot refresh.
            self.scheduler.tick()
        return report

    def crawl_all(self, max_rounds: int | None = None) -> list[CrawlReport]:
        """Crawl until the stream is exhausted (or ``max_rounds`` reached)."""
        reports: list[CrawlReport] = []
        while max_rounds is None or len(reports) < max_rounds:
            report = self.crawl_once()
            if report is None:
                break
            reports.append(report)
        return reports
