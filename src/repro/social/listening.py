"""Social Listening: monitoring human-written perturbations online.

Paper §III-E: "given a list of English words, CrypText first searches on the
social platforms all the contents using their perturbations as queries.
Then, it aggregates and displays the usage patterns of each individual
perturbation in both frequency and sentiment through interactive timeline
charts."

:class:`SocialListener` reproduces exactly that pipeline against a simulated
platform: expand each keyword into its perturbations via Look Up, search the
platform with the expanded query set, and aggregate matches into per-day
timelines of frequency and average sentiment.  The timeline data feeds the
chart export in :mod:`repro.viz.timeline`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Sequence, TYPE_CHECKING

from ..core.lookup import LookupEngine
from ..errors import PlatformError
from ..sentiment import SentimentAnalyzer
from .platform import SocialPlatform

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from ..batch import BatchEngine


@dataclass(frozen=True)
class TimelinePoint:
    """Aggregated usage of a keyword (or one perturbation) on one day."""

    date: str
    frequency: int
    average_sentiment: float
    negative_share: float

    def to_dict(self) -> dict[str, object]:
        """Serialize for the timeline chart export."""
        return {
            "date": self.date,
            "frequency": self.frequency,
            "average_sentiment": self.average_sentiment,
            "negative_share": self.negative_share,
        }


@dataclass(frozen=True)
class KeywordUsage:
    """Everything Social Listening reports about one monitored keyword."""

    keyword: str
    perturbations: tuple[str, ...]
    total_posts: int
    perturbed_posts: int
    timeline: tuple[TimelinePoint, ...] = field(default_factory=tuple)
    per_perturbation_counts: dict[str, int] = field(default_factory=dict)

    @property
    def perturbed_share(self) -> float:
        """Fraction of matched posts that matched via a perturbation."""
        return self.perturbed_posts / self.total_posts if self.total_posts else 0.0

    def to_dict(self) -> dict[str, object]:
        """Serialize for the API layer / chart exports."""
        return {
            "keyword": self.keyword,
            "perturbations": list(self.perturbations),
            "total_posts": self.total_posts,
            "perturbed_posts": self.perturbed_posts,
            "perturbed_share": self.perturbed_share,
            "timeline": [point.to_dict() for point in self.timeline],
            "per_perturbation_counts": dict(self.per_perturbation_counts),
        }


class SocialListener:
    """Monitors keyword perturbation usage on a platform.

    Parameters
    ----------
    platform:
        The platform to search.
    lookup:
        Look Up engine used to expand keywords into their perturbations.
    sentiment:
        Sentiment analyzer for the per-day sentiment series (a default
        lexicon analyzer is created when omitted).
    max_perturbations:
        Cap on how many perturbations per keyword are used as extra queries.
    batch_engine:
        Optional batch engine; when present, watch-lists are expanded through
        :meth:`BatchEngine.look_up_batch` (deduplicated, shard-parallel)
        instead of one Look Up per keyword.
    """

    def __init__(
        self,
        platform: SocialPlatform,
        lookup: LookupEngine,
        sentiment: SentimentAnalyzer | None = None,
        max_perturbations: int = 25,
        batch_engine: "BatchEngine | None" = None,
    ) -> None:
        if max_perturbations < 0:
            raise PlatformError(
                f"max_perturbations must be >= 0, got {max_perturbations}"
            )
        self.platform = platform
        self.lookup = lookup
        self.sentiment = sentiment if sentiment is not None else SentimentAnalyzer()
        self.max_perturbations = max_perturbations
        self.batch_engine = batch_engine

    # ------------------------------------------------------------------ #
    def expand_keyword(self, keyword: str) -> tuple[str, ...]:
        """The keyword's perturbations, most frequent first."""
        result = self.lookup.look_up(keyword, case_sensitive=True)
        return result.perturbation_tokens()[: self.max_perturbations]

    def expand_keywords(self, keywords: Sequence[str]) -> dict[str, tuple[str, ...]]:
        """Expand a whole watch-list into per-keyword perturbations.

        Served by the batch engine when one is attached (duplicate keywords
        across the watch-list are looked up once); identical results to
        calling :meth:`expand_keyword` per keyword either way.
        """
        if self.batch_engine is None:
            return {keyword: self.expand_keyword(keyword) for keyword in keywords}
        results = self.batch_engine.look_up_batch(list(keywords), case_sensitive=True)
        return {
            keyword: result.perturbation_tokens()[: self.max_perturbations]
            for keyword, result in zip(keywords, results)
        }

    def _timeline_from_posts(
        self, posts: Sequence[dict[str, object]]
    ) -> tuple[TimelinePoint, ...]:
        by_day: dict[str, list[dict[str, object]]] = defaultdict(list)
        for post in posts:
            by_day[str(post["created_at"])].append(post)
        points: list[TimelinePoint] = []
        for day in sorted(by_day):
            day_posts = by_day[day]
            scores = [self.sentiment.compound(str(post["text"])) for post in day_posts]
            negatives = sum(1 for score in scores if score <= -0.05)
            points.append(
                TimelinePoint(
                    date=day,
                    frequency=len(day_posts),
                    average_sentiment=(sum(scores) / len(scores)) if scores else 0.0,
                    negative_share=(negatives / len(day_posts)) if day_posts else 0.0,
                )
            )
        return tuple(points)

    def monitor_keyword(
        self,
        keyword: str,
        since: str | None = None,
        until: str | None = None,
        include_original: bool = True,
        perturbations: tuple[str, ...] | None = None,
    ) -> KeywordUsage:
        """Build the full Social Listening report for one keyword.

        ``perturbations`` lets :meth:`monitor_keywords` pass in a batch
        expansion it already computed for the whole watch-list.
        """
        if perturbations is None:
            perturbations = self.expand_keyword(keyword)
        queries = ((keyword,) if include_original else ()) + perturbations
        if not queries:
            queries = (keyword,)
        result = self.platform.search(queries, since=since, until=until)
        # The platform tokenizes posts case-insensitively, so case-only
        # variants of the keyword cannot be distinguished there; count only
        # perturbations whose lowercase form differs from the keyword.
        keyword_lower = keyword.lower()
        perturbation_set = {
            token.lower() for token in perturbations if token.lower() != keyword_lower
        }
        per_perturbation: dict[str, int] = {
            token: 0 for token in perturbations if token.lower() != keyword_lower
        }
        perturbed_posts = 0
        for post in result.posts:
            tokens = {str(token) for token in post.get("tokens", [])}
            matched = {token for token in perturbation_set if token in tokens}
            if matched:
                perturbed_posts += 1
                for perturbation in per_perturbation:
                    if perturbation.lower() in matched:
                        per_perturbation[perturbation] += 1
        return KeywordUsage(
            keyword=keyword,
            perturbations=perturbations,
            total_posts=len(result),
            perturbed_posts=perturbed_posts,
            timeline=self._timeline_from_posts(result.posts),
            per_perturbation_counts=per_perturbation,
        )

    def monitor_keywords(
        self,
        keywords: Sequence[str],
        since: str | None = None,
        until: str | None = None,
    ) -> dict[str, KeywordUsage]:
        """Monitor several keywords (the GUI's watch-list).

        The whole watch-list is expanded in one batch Look Up before the
        per-keyword platform searches run.
        """
        expansions = self.expand_keywords(keywords)
        return {
            keyword: self.monitor_keyword(
                keyword, since=since, until=until, perturbations=expansions[keyword]
            )
            for keyword in keywords
        }

    # ------------------------------------------------------------------ #
    def merge_usage(self, usages: Sequence[KeywordUsage]) -> KeywordUsage:
        """Merge usage reports of the *same keyword* from several platforms.

        Supports the paper's stated future work ("the Social Listening
        function is limited to Reddit data and we plan to support other
        platforms"): :class:`MultiPlatformListener` monitors a keyword on
        every platform and merges the per-platform reports into one
        cross-platform view.
        """
        if not usages:
            raise PlatformError("at least one usage report is required")
        keyword = usages[0].keyword
        if any(usage.keyword != keyword for usage in usages):
            raise PlatformError("cannot merge usage reports of different keywords")
        perturbations: list[str] = []
        for usage in usages:
            for token in usage.perturbations:
                if token not in perturbations:
                    perturbations.append(token)
        per_perturbation: dict[str, int] = {}
        for usage in usages:
            for token, count in usage.per_perturbation_counts.items():
                per_perturbation[token] = per_perturbation.get(token, 0) + count
        by_date: dict[str, list[TimelinePoint]] = defaultdict(list)
        for usage in usages:
            for point in usage.timeline:
                by_date[point.date].append(point)
        merged_timeline = []
        for date in sorted(by_date):
            points = by_date[date]
            frequency = sum(point.frequency for point in points)
            weighted_sentiment = (
                sum(point.average_sentiment * point.frequency for point in points) / frequency
                if frequency
                else 0.0
            )
            weighted_negative = (
                sum(point.negative_share * point.frequency for point in points) / frequency
                if frequency
                else 0.0
            )
            merged_timeline.append(
                TimelinePoint(
                    date=date,
                    frequency=frequency,
                    average_sentiment=weighted_sentiment,
                    negative_share=weighted_negative,
                )
            )
        return KeywordUsage(
            keyword=keyword,
            perturbations=tuple(perturbations),
            total_posts=sum(usage.total_posts for usage in usages),
            perturbed_posts=sum(usage.perturbed_posts for usage in usages),
            timeline=tuple(merged_timeline),
            per_perturbation_counts=per_perturbation,
        )

    # ------------------------------------------------------------------ #
    def keyword_enrichment_comparison(
        self, keyword: str, since: str | None = None, until: str | None = None
    ) -> dict[str, object]:
        """The §III-B use-case numbers for one keyword.

        Returns the negative-sentiment share of posts matched by the plain
        keyword versus by the keyword plus its perturbations, together with
        the match counts — the exact comparison behind "67% ... vs 87%".
        """
        plain = self.platform.search(keyword, since=since, until=until)
        perturbations = self.expand_keyword(keyword)
        enriched = self.platform.search(
            (keyword, *perturbations), since=since, until=until
        )
        plain_share = self.sentiment.negative_share(list(plain.texts))
        enriched_share = self.sentiment.negative_share(list(enriched.texts))
        return {
            "keyword": keyword,
            "num_perturbations": len(perturbations),
            "plain_matches": len(plain),
            "enriched_matches": len(enriched),
            "plain_negative_share": plain_share,
            "enriched_negative_share": enriched_share,
            "negative_share_gain": enriched_share - plain_share,
        }


class MultiPlatformListener:
    """Social Listening across several platforms at once.

    The deployed system only listens to Reddit and names multi-platform
    support as future work (paper §IV); this listener implements it by
    fanning a keyword out to one :class:`SocialListener` per platform and
    merging the per-platform reports.

    Parameters
    ----------
    platforms:
        Platforms to monitor.
    lookup:
        Shared Look Up engine (one dictionary serves every platform).
    sentiment:
        Shared sentiment analyzer.
    max_perturbations:
        Per-keyword cap forwarded to each underlying listener.
    batch_engine:
        Optional shared batch engine forwarded to each underlying listener
        (one batch expansion serves every platform).
    """

    def __init__(
        self,
        platforms: Sequence[SocialPlatform],
        lookup: LookupEngine,
        sentiment: SentimentAnalyzer | None = None,
        max_perturbations: int = 25,
        batch_engine: "BatchEngine | None" = None,
    ) -> None:
        if not platforms:
            raise PlatformError("at least one platform is required")
        names = [platform.name for platform in platforms]
        if len(set(names)) != len(names):
            raise PlatformError(f"platform names must be unique, got {names}")
        shared_sentiment = sentiment if sentiment is not None else SentimentAnalyzer()
        self.listeners: dict[str, SocialListener] = {
            platform.name: SocialListener(
                platform=platform,
                lookup=lookup,
                sentiment=shared_sentiment,
                max_perturbations=max_perturbations,
                batch_engine=batch_engine,
            )
            for platform in platforms
        }

    @property
    def platform_names(self) -> tuple[str, ...]:
        """Names of the monitored platforms."""
        return tuple(sorted(self.listeners))

    def monitor_keyword(
        self,
        keyword: str,
        since: str | None = None,
        until: str | None = None,
    ) -> dict[str, KeywordUsage]:
        """Per-platform usage reports plus a merged cross-platform view.

        The returned mapping has one entry per platform plus the key
        ``"all"`` holding the merged report.
        """
        per_platform = {
            name: listener.monitor_keyword(keyword, since=since, until=until)
            for name, listener in sorted(self.listeners.items())
        }
        reference = next(iter(self.listeners.values()))
        merged = reference.merge_usage(list(per_platform.values()))
        return {**per_platform, "all": merged}

    def monitor_keywords(
        self,
        keywords: Sequence[str],
        since: str | None = None,
        until: str | None = None,
    ) -> dict[str, dict[str, KeywordUsage]]:
        """Monitor several keywords across every platform."""
        return {
            keyword: self.monitor_keyword(keyword, since=since, until=until)
            for keyword in keywords
        }
