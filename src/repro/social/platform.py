"""Simulated social platform (Twitter / Reddit stand-in).

The platform stores posts in a document-store collection with a multikey
index over their lowercased tokens, and exposes the two access patterns the
paper's system uses:

* :meth:`SocialPlatform.search` — PushShift-style keyword search with
  optional date range, used by Social Listening and by the keyword-enrichment
  use case;
* :meth:`SocialPlatform.stream` — a chronological post stream with a cursor,
  used by the crawler that continually enriches the dictionary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..errors import PlatformError
from ..storage import Collection, DocumentStore
from ..text.tokenizer import Tokenizer
from ..datasets.builders import SyntheticPost

#: Name of the collection holding the posts of one platform.
POST_COLLECTION = "posts"


@dataclass(frozen=True)
class SearchResult:
    """Result of one platform search."""

    queries: tuple[str, ...]
    posts: tuple[dict[str, object], ...]

    @property
    def texts(self) -> tuple[str, ...]:
        """Published text of every matched post."""
        return tuple(str(post["text"]) for post in self.posts)

    def __len__(self) -> int:
        return len(self.posts)


class SocialPlatform:
    """An in-process social platform with search and stream APIs.

    Parameters
    ----------
    name:
        Platform name ("twitter", "reddit", ...); used to filter which posts
        of a mixed corpus are ingested.
    store:
        Optional shared document store.
    """

    def __init__(self, name: str = "twitter", store: DocumentStore | None = None) -> None:
        self.name = name
        self.store = store if store is not None else DocumentStore(f"platform-{name}")
        self._tokenizer = Tokenizer(lowercase=True)
        collection = self._collection
        collection.create_index("tokens", multi=True)
        collection.create_index("created_at")
        collection.create_index("author")

    @property
    def _collection(self) -> Collection:
        return self.store.collection(f"{self.name}_{POST_COLLECTION}")

    def __len__(self) -> int:
        return len(self._collection)

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def ingest_posts(
        self, posts: Iterable[SyntheticPost], only_matching_platform: bool = True
    ) -> int:
        """Ingest synthetic posts; returns how many were stored."""
        stored = 0
        for post in posts:
            if only_matching_platform and post.platform != self.name:
                continue
            document = post.to_document()
            document["tokens"] = [
                token.text for token in self._tokenizer.word_tokens(post.text)
            ]
            self._collection.insert_one(document)
            stored += 1
        return stored

    def ingest_raw(
        self,
        text: str,
        created_at: str,
        author: str = "anonymous",
        **metadata: object,
    ) -> int:
        """Ingest a single raw post (used by tests and live-feed simulations)."""
        if not text.strip():
            raise PlatformError("cannot ingest an empty post")
        document: dict[str, object] = {
            "post_id": len(self._collection) + 1,
            "platform": self.name,
            "author": author,
            "created_at": created_at,
            "text": text,
            "clean_text": text,
            "tokens": [token.text for token in self._tokenizer.word_tokens(text)],
        }
        document.update(metadata)
        return int(self._collection.insert_one(document))

    # ------------------------------------------------------------------ #
    # search (PushShift-style)
    # ------------------------------------------------------------------ #
    def search(
        self,
        queries: str | Sequence[str],
        since: str | None = None,
        until: str | None = None,
        limit: int | None = None,
    ) -> SearchResult:
        """Posts containing *any* of the query tokens (case-insensitive).

        Parameters
        ----------
        queries:
            One keyword or a sequence of keywords (e.g. a keyword plus its
            perturbations from Look Up).
        since / until:
            Inclusive ISO-date bounds on ``created_at``.
        limit:
            Maximum number of posts returned (most recent first).
        """
        if isinstance(queries, str):
            query_list: tuple[str, ...] = (queries,)
        else:
            query_list = tuple(queries)
        if not query_list:
            raise PlatformError("at least one query keyword is required")
        tokens = [query.lower() for query in query_list]
        filter_document: dict[str, object] = {"tokens": {"$in": tokens}}
        date_filter: dict[str, object] = {}
        if since is not None:
            date_filter["$gte"] = since
        if until is not None:
            date_filter["$lte"] = until
        if date_filter:
            filter_document["created_at"] = date_filter
        posts = self._collection.find(
            filter_document, sort="created_at", reverse=True, limit=limit
        )
        return SearchResult(queries=query_list, posts=tuple(posts))

    def count_matching(self, queries: str | Sequence[str]) -> int:
        """Number of posts matching any of the query tokens."""
        return len(self.search(queries))

    # ------------------------------------------------------------------ #
    # stream (Twitter-style)
    # ------------------------------------------------------------------ #
    def stream(
        self, batch_size: int = 100, after_post_id: int = 0
    ) -> Iterator[list[dict[str, object]]]:
        """Yield post batches in ``post_id`` order, starting after a cursor.

        The crawler keeps the last seen ``post_id`` as its cursor, exactly
        like a resumable stream consumer.
        """
        if batch_size < 1:
            raise PlatformError(f"batch_size must be >= 1, got {batch_size}")
        cursor = after_post_id
        while True:
            batch = self._collection.find(
                {"post_id": {"$gt": cursor}}, sort="post_id", limit=batch_size
            )
            if not batch:
                return
            yield batch
            cursor = int(batch[-1]["post_id"])

    def posts_between(self, since: str, until: str) -> list[dict[str, object]]:
        """All posts in an inclusive ISO-date range (used by timelines)."""
        return self._collection.find(
            {"created_at": {"$gte": since, "$lte": until}}, sort="created_at"
        )

    def all_posts(self) -> list[dict[str, object]]:
        """Every stored post (most recent last)."""
        return self._collection.find(sort="post_id")
