"""Content-moderation assistant: catching perturbation-based evasion.

Paper §III-E: "gatekeepers of social platforms also can utilize this
function for better content moderation, especially in detecting and removing
abusive texts on web ..., many of which are often intentionally written with
misspellings to evade automatic detection."  §III-C likewise proposes using
CrypText to de-noise classifier inputs and to treat the *presence* of
perturbations as a predictive signal.

:class:`ModerationPipeline` turns those use cases into a concrete tool: for
each post it runs a toxicity classifier on the raw text, on the normalized
text, and combines both with the perturbation evidence that Normalization
uncovered, producing a moderation verdict with an explanation:

* ``flagged_raw`` — the classifier already flags the raw text;
* ``flagged_after_normalization`` — the raw text evades the classifier but
  the de-perturbed text is flagged (the evasion case the paper highlights);
* ``suspicious_perturbations`` — not flagged either way, but the post
  perturbs sensitive vocabulary, which a human reviewer may want to see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from ..core.normalizer import Normalizer
from ..core.pipeline import CrypText
from ..errors import CrypTextError


class _ToxicityClassifier(Protocol):
    """Anything with a ``predict_label(text) -> str`` method (label "toxic")."""

    def predict_label(self, text: str) -> str:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class ModerationVerdict:
    """Decision for one post."""

    text: str
    normalized_text: str
    raw_label: str
    normalized_label: str
    num_perturbations: int
    perturbed_sensitive_tokens: tuple[str, ...]
    action: str
    reason: str

    @property
    def flagged(self) -> bool:
        """Whether the post needs moderator attention."""
        return self.action != "allow"

    def to_dict(self) -> dict[str, object]:
        """Serialize for moderation queues / audit logs."""
        return {
            "text": self.text,
            "normalized_text": self.normalized_text,
            "raw_label": self.raw_label,
            "normalized_label": self.normalized_label,
            "num_perturbations": self.num_perturbations,
            "perturbed_sensitive_tokens": list(self.perturbed_sensitive_tokens),
            "action": self.action,
            "reason": self.reason,
        }


@dataclass
class ModerationReport:
    """Aggregate outcome over a batch of posts."""

    verdicts: list[ModerationVerdict] = field(default_factory=list)

    @property
    def flagged_raw(self) -> list[ModerationVerdict]:
        """Posts the classifier flags without any help."""
        return [v for v in self.verdicts if v.action == "remove"]

    @property
    def caught_by_normalization(self) -> list[ModerationVerdict]:
        """Evasive posts: clean to the classifier, toxic once de-perturbed."""
        return [v for v in self.verdicts if v.action == "remove_after_normalization"]

    @property
    def needs_review(self) -> list[ModerationVerdict]:
        """Posts escalated only because they perturb sensitive vocabulary."""
        return [v for v in self.verdicts if v.action == "review"]

    @property
    def allowed(self) -> list[ModerationVerdict]:
        """Posts that pass."""
        return [v for v in self.verdicts if v.action == "allow"]

    def summary(self) -> dict[str, int]:
        """Counts per action."""
        return {
            "total": len(self.verdicts),
            "remove": len(self.flagged_raw),
            "remove_after_normalization": len(self.caught_by_normalization),
            "review": len(self.needs_review),
            "allow": len(self.allowed),
        }


class ModerationPipeline:
    """Moderation assistant combining a toxicity model with CrypText.

    Parameters
    ----------
    cryptext:
        The CrypText system (supplies the normalizer and the sensitive
        perturbation detection).
    classifier:
        Toxicity classifier with a ``predict_label`` method returning
        ``"toxic"`` for abusive text (e.g.
        :class:`~repro.classifiers.apis.SimulatedToxicityAPI`).
    toxic_label:
        The label value treated as abusive.
    sensitive_review_threshold:
        Escalate a non-flagged post to human review when it contains at
        least this many perturbed sensitive tokens.
    """

    def __init__(
        self,
        cryptext: CrypText,
        classifier: _ToxicityClassifier,
        toxic_label: str = "toxic",
        sensitive_review_threshold: int = 2,
    ) -> None:
        if sensitive_review_threshold < 1:
            raise CrypTextError(
                "sensitive_review_threshold must be >= 1, "
                f"got {sensitive_review_threshold}"
            )
        self.cryptext = cryptext
        self.classifier = classifier
        self.toxic_label = toxic_label
        self.sensitive_review_threshold = sensitive_review_threshold

    @property
    def normalizer(self) -> Normalizer:
        """The normalizer used to de-perturb posts."""
        return self.cryptext.normalizer

    # ------------------------------------------------------------------ #
    def review_post(self, text: str) -> ModerationVerdict:
        """Produce the moderation verdict for one post."""
        normalization = self.normalizer.normalize(text)
        raw_label = self.classifier.predict_label(text)
        normalized_label = self.classifier.predict_label(normalization.normalized_text)
        perturbed = normalization.perturbed_corrections
        sensitive = tuple(
            correction.original
            for correction in perturbed
            if self.cryptext.dictionary.lexicon.is_word(correction.corrected)
        )
        if raw_label == self.toxic_label:
            action, reason = "remove", "toxicity model flags the raw text"
        elif normalized_label == self.toxic_label:
            action = "remove_after_normalization"
            reason = (
                "raw text evades the toxicity model but its de-perturbed form is "
                f"flagged ({len(perturbed)} perturbation(s) undone)"
            )
        elif len(sensitive) >= self.sensitive_review_threshold:
            action = "review"
            reason = (
                "post perturbs sensitive vocabulary: "
                + ", ".join(sensitive[:5])
            )
        else:
            action, reason = "allow", "no toxicity detected and no evasion signals"
        return ModerationVerdict(
            text=text,
            normalized_text=normalization.normalized_text,
            raw_label=raw_label,
            normalized_label=normalized_label,
            num_perturbations=len(perturbed),
            perturbed_sensitive_tokens=sensitive,
            action=action,
            reason=reason,
        )

    def review_posts(self, texts: Sequence[str]) -> ModerationReport:
        """Review a batch of posts."""
        report = ModerationReport()
        for text in texts:
            report.verdicts.append(self.review_post(text))
        return report
