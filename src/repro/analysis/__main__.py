"""``python -m repro.analysis`` — run the lint pass (exit 1 on findings)."""

from __future__ import annotations

import sys

from .lint import main

if __name__ == "__main__":
    sys.exit(main())
