"""Runtime lock-order sanitizer: TSan-lite for the project's own locks.

Every lock in the concurrent modules is constructed through
:func:`tracked_lock` / :func:`tracked_rlock`, which carry the lock's *name*
in the declared hierarchy (:mod:`repro.analysis.hierarchy`).  Disarmed —
the default — the factories return plain :mod:`threading` primitives, so
production pays nothing.  Enabled (``CRYPTEXT_SANITIZE=1`` via
:func:`maybe_enable_from_env`, or :func:`enable` programmatically, *before*
the system under test is constructed), they return wrappers that feed a
process-global :class:`LockOrderSanitizer`:

* **per-thread acquisition stacks** — which named locks each thread holds,
  with the acquiring stack frame recorded for reports;
* **hierarchy violations** — acquiring a lock whose declared rank is not
  strictly greater than one already held (see
  :data:`~repro.analysis.hierarchy.LOCK_RANKS`);
* **lock-order cycles** — a dynamic acquired-before graph over lock names;
  an edge that closes a cycle is a potential deadlock even if no run has
  deadlocked yet (thread 1 takes A then B while thread 2 takes B then A);
* **lock-held-across-IO** — the existing fault-point call sites
  (``wal.append``, ``tailer.read``, …) double as IO markers: the sanitizer
  attaches itself as an observer on the global
  :class:`~repro.resilience.faults.FaultInjector`, so every guarded IO hit
  reports which locks the calling thread held, checked against
  :data:`~repro.analysis.hierarchy.SANITIZER_IO_ALLOWLIST`;
* **held-time percentiles** — wall-clock hold durations per lock name
  (p50/p95/p99/max), the "which lock is my bottleneck" report, aggregated
  into the shared fixed-bucket :class:`~repro.obs.histogram.Histogram`
  (O(buckets) memory regardless of run length) and scrapeable as
  ``cryptext_lock_held_seconds`` when the metrics registry is also armed.

Violations are collected, not raised: a sanitized test run finishes and
then asserts the report is clean (the ``tests/conftest.py`` session hook),
so one inversion does not mask a second.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from .hierarchy import LOCK_RANKS, SANITIZER_IO_ALLOWLIST

__all__ = [
    "ENV_VAR",
    "LockOrderSanitizer",
    "SanitizerReport",
    "Violation",
    "active",
    "disable",
    "enable",
    "maybe_enable_from_env",
    "tracked_lock",
    "tracked_rlock",
]

ENV_VAR = "CRYPTEXT_SANITIZE"

#: Stack frames kept per recorded acquisition site.
_STACK_DEPTH = 6


@dataclass(frozen=True)
class Violation:
    """One detected ordering/cycle/IO problem."""

    kind: str  # "hierarchy" | "cycle" | "io-under-lock"
    lock: str
    held: tuple[str, ...]
    thread: str
    detail: str
    stack: str = ""

    def describe(self) -> str:
        held = ", ".join(self.held) or "(none)"
        text = (
            f"[{self.kind}] {self.detail} "
            f"(lock={self.lock}, held=[{held}], thread={self.thread})"
        )
        if self.stack:
            text += f"\n{self.stack}"
        return text


@dataclass
class SanitizerReport:
    """The collected outcome of a sanitized run."""

    violations: list[Violation] = field(default_factory=list)
    edges: dict[str, tuple[str, ...]] = field(default_factory=dict)
    acquisitions: int = 0
    io_events: int = 0
    held_times: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        lines = [
            f"sanitizer: {self.acquisitions} acquisitions, "
            f"{self.io_events} IO events, {len(self.violations)} violation(s)"
        ]
        lines.extend(violation.describe() for violation in self.violations)
        return "\n".join(lines)


class _HeldLock:
    __slots__ = ("name", "since", "count")

    def __init__(self, name: str, since: float) -> None:
        self.name = name
        self.since = since
        self.count = 1


class LockOrderSanitizer:
    """Records lock acquisitions and detects ordering hazards.

    Thread-safe; its own internal lock is a plain (untracked)
    :class:`threading.Lock` acquired only around bookkeeping, never while
    calling back into project code — it sits below every tracked lock.
    """

    def __init__(
        self,
        ranks: Mapping[str, int] | None = None,
        *,
        clock: Callable[[], float] = time.perf_counter,
        capture_stacks: bool = True,
        io_allowlist: Iterable[tuple[str, str]] | None = None,
    ) -> None:
        self.ranks = dict(LOCK_RANKS if ranks is None else ranks)
        self._clock = clock
        self._capture_stacks = capture_stacks
        self._io_allowlist = frozenset(
            SANITIZER_IO_ALLOWLIST if io_allowlist is None else io_allowlist
        )
        # The sanitizer's own bookkeeping lock must stay untracked: it sits
        # below every tracked lock and must never feed back into itself.
        self._lock = threading.Lock()  # lint: allow=lock-order (sanitizer internals)
        self._local = threading.local()
        # Dynamic acquired-before graph: edges[a] = names acquired while a
        # was held.  Seen-edge set keeps reporting to one entry per pair.
        self._edges: dict[str, set[str]] = {}
        self._violations: list[Violation] = []
        self._seen: set[tuple[str, ...]] = set()
        # Deferred import: obs.registry imports tracked_lock from this
        # module at its own import time, so a top-level import here would
        # close the cycle against a partially-initialized module.
        from ..obs.histogram import Histogram

        self._histogram_cls = Histogram
        self._held_times: dict[str, Histogram] = {}
        self._acquisitions = 0
        self._io_events = 0

    # ------------------------------------------------------------------ #
    # per-thread stack helpers
    # ------------------------------------------------------------------ #
    def _stack(self) -> list[_HeldLock]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def held_names(self) -> tuple[str, ...]:
        """Names of the locks the calling thread currently holds."""
        return tuple(entry.name for entry in self._stack())

    def _site(self) -> str:
        if not self._capture_stacks:
            return ""
        # Skip the sanitizer's own frames; keep the acquiring caller's.
        frames = traceback.format_stack(limit=_STACK_DEPTH + 3)[:-3]
        return "".join(frames[-_STACK_DEPTH:]).rstrip()

    def _record(self, violation: Violation, dedup_key: tuple[str, ...]) -> None:
        with self._lock:
            if dedup_key in self._seen:
                return
            self._seen.add(dedup_key)
            self._violations.append(violation)

    # ------------------------------------------------------------------ #
    # acquisition protocol (called by the tracked-lock wrappers)
    # ------------------------------------------------------------------ #
    def note_attempt(self, name: str, *, reentrant: bool) -> None:
        """Check ordering *before* blocking on ``name``.

        Recording on the attempt rather than after the acquire matters: the
        interleaving that would actually deadlock never returns from
        ``acquire()``, so a post-acquire hook would miss exactly the case
        the sanitizer exists for.
        """
        stack = self._stack()
        if reentrant:
            for entry in stack:
                if entry.name == name:
                    return  # RLock re-entry: no new ordering fact.
        thread = threading.current_thread().name
        held = tuple(entry.name for entry in stack)
        new_edges: list[tuple[str, str]] = []
        acquiring_rank = self.ranks.get(name)
        for entry in stack:
            if entry.name == name:
                # Same *name* on a non-reentrant lock: either the same lock
                # object (guaranteed self-deadlock) or a sibling sharing the
                # role — both are ordering bugs worth reporting.
                self._record(
                    Violation(
                        kind="cycle",
                        lock=name,
                        held=held,
                        thread=thread,
                        detail=(
                            f"re-acquiring non-reentrant lock {name!r} "
                            f"already held by this thread (self-deadlock)"
                        ),
                        stack=self._site(),
                    ),
                    ("self-deadlock", name),
                )
                continue
            held_rank = self.ranks.get(entry.name)
            if (
                held_rank is not None
                and acquiring_rank is not None
                and acquiring_rank <= held_rank
            ):
                self._record(
                    Violation(
                        kind="hierarchy",
                        lock=name,
                        held=held,
                        thread=thread,
                        detail=(
                            f"acquiring {name!r} (rank {self.ranks.get(name)}) "
                            f"while holding {entry.name!r} "
                            f"(rank {self.ranks.get(entry.name)}) inverts the "
                            f"declared lock hierarchy"
                        ),
                        stack=self._site(),
                    ),
                    ("hierarchy", entry.name, name),
                )
            new_edges.append((entry.name, name))
        if new_edges:
            self._add_edges(new_edges, thread)

    def _add_edges(self, pairs: list[tuple[str, str]], thread: str) -> None:
        cycles: list[tuple[str, str, tuple[str, ...]]] = []
        with self._lock:
            for source, target in pairs:
                targets = self._edges.setdefault(source, set())
                if target in targets:
                    continue
                # Does target already reach source?  Then (source -> target)
                # closes a cycle: some thread acquired them in the opposite
                # order, which is a potential deadlock.
                path = self._find_path(target, source)
                targets.add(target)
                if path is not None:
                    cycles.append((source, target, tuple(path)))
        for source, target, path in cycles:
            loop = " -> ".join((source, *path))
            self._record(
                Violation(
                    kind="cycle",
                    lock=target,
                    held=(source,),
                    thread=thread,
                    detail=(
                        f"lock-order cycle (potential deadlock): this thread "
                        f"acquires {source!r} before {target!r}, but the "
                        f"opposite order was already observed ({loop})"
                    ),
                    stack=self._site(),
                ),
                ("cycle", *sorted((source, target))),
            )

    def _find_path(self, start: str, goal: str) -> list[str] | None:
        """A path ``start -> ... -> goal`` in the acquired-before graph."""
        if start == goal:
            return [start]
        seen = {start}
        frontier: list[tuple[str, list[str]]] = [(start, [start])]
        while frontier:
            node, path = frontier.pop()
            for nxt in self._edges.get(node, ()):
                if nxt == goal:
                    return path + [nxt]
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, path + [nxt]))
        return None

    def note_acquired(self, name: str, *, reentrant: bool) -> None:
        stack = self._stack()
        if reentrant:
            for entry in stack:
                if entry.name == name:
                    entry.count += 1
                    return
        stack.append(_HeldLock(name, self._clock()))
        with self._lock:
            self._acquisitions += 1

    def note_released(self, name: str) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            entry = stack[index]
            if entry.name != name:
                continue
            entry.count -= 1
            if entry.count > 0:
                return
            del stack[index]
            duration = self._clock() - entry.since
            with self._lock:
                hist = self._held_times.get(name)
                if hist is None:
                    # A *tracked* lock here would re-enter the sanitizer on
                    # every histogram release; keep it plain.
                    hist = self._histogram_cls(lock=threading.Lock())
                    self._held_times[name] = hist
            hist.observe(duration)
            return

    # ------------------------------------------------------------------ #
    # IO observation (the fault-point observer hook)
    # ------------------------------------------------------------------ #
    def note_io(self, point: str) -> None:
        """Called for every guarded fault-point hit; flags IO under a lock."""
        with self._lock:
            self._io_events += 1
        held = self.held_names()
        if not held:
            return
        blocked = [
            name for name in held if (point, name) not in self._io_allowlist
        ]
        if not blocked:
            return
        self._record(
            Violation(
                kind="io-under-lock",
                lock=blocked[-1],
                held=held,
                thread=threading.current_thread().name,
                detail=(
                    f"blocking IO at fault point {point!r} while holding "
                    f"{', '.join(repr(name) for name in blocked)} "
                    f"(not in the sanitizer IO allowlist)"
                ),
                stack=self._site(),
            ),
            ("io-under-lock", point, *sorted(blocked)),
        )

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def held_time_histograms(self) -> dict[str, object]:
        """Per-lock hold-duration histograms (the shared ``obs`` type).

        The metrics adapters scrape these directly as
        ``cryptext_lock_held_seconds{lock=...}`` samples.
        """
        with self._lock:
            return dict(self._held_times)

    def held_time_percentiles(self) -> dict[str, dict[str, float]]:
        """Per-lock hold-duration percentiles in seconds (p50/p95/p99/max)."""
        report: dict[str, dict[str, float]] = {}
        for name, hist in self.held_time_histograms().items():
            snap = hist.snapshot()
            report[name] = {
                "count": float(snap["count"]),
                "p50": snap["p50"],
                "p95": snap["p95"],
                "p99": snap["p99"],
                "max": snap["max"],
            }
        return report

    def report(self) -> SanitizerReport:
        with self._lock:
            violations = list(self._violations)
            edges = {source: tuple(sorted(targets)) for source, targets in self._edges.items()}
            acquisitions = self._acquisitions
            io_events = self._io_events
        return SanitizerReport(
            violations=violations,
            edges=edges,
            acquisitions=acquisitions,
            io_events=io_events,
            held_times=self.held_time_percentiles(),
        )


# ---------------------------------------------------------------------- #
# tracked lock wrappers
# ---------------------------------------------------------------------- #
class _TrackedLock:
    """A named lock feeding the sanitizer; mirrors the threading lock API."""

    __slots__ = ("_inner", "name", "_sanitizer", "_reentrant")

    def __init__(self, inner, name: str, sanitizer: LockOrderSanitizer, reentrant: bool) -> None:
        self._inner = inner
        self.name = name
        self._sanitizer = sanitizer
        self._reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._sanitizer.note_attempt(self.name, reentrant=self._reentrant)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._sanitizer.note_acquired(self.name, reentrant=self._reentrant)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._sanitizer.note_released(self.name)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "RLock" if self._reentrant else "Lock"
        return f"_TrackedLock({self.name!r}, {kind})"


def tracked_lock(name: str):
    """A :class:`threading.Lock` named ``name`` in the declared hierarchy.

    Plain lock when the sanitizer is disarmed (the production path: one
    module-global read per *construction*, zero per acquisition); a
    sanitized wrapper when enabled.  Enable the sanitizer before building
    the system under test — already-constructed locks are not retrofitted.
    """
    sanitizer = _ACTIVE
    if sanitizer is None:
        return threading.Lock()
    return _TrackedLock(threading.Lock(), name, sanitizer, reentrant=False)


def tracked_rlock(name: str):
    """A :class:`threading.RLock` named ``name`` (see :func:`tracked_lock`)."""
    sanitizer = _ACTIVE
    if sanitizer is None:
        return threading.RLock()
    return _TrackedLock(threading.RLock(), name, sanitizer, reentrant=True)


# ---------------------------------------------------------------------- #
# global activation
# ---------------------------------------------------------------------- #
_ACTIVE: LockOrderSanitizer | None = None


def active() -> LockOrderSanitizer | None:
    """The enabled process-global sanitizer, or ``None``."""
    return _ACTIVE


def enable(sanitizer: LockOrderSanitizer | None = None) -> LockOrderSanitizer:
    """Enable sanitized lock construction (idempotent) and IO observation.

    Attaches the sanitizer as the observer on the global fault-injection
    registry, so the ``if FAULTS.armed:`` guards compiled into the IO hot
    paths report their hits here without arming any failures.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        return _ACTIVE
    _ACTIVE = sanitizer if sanitizer is not None else LockOrderSanitizer()
    from ..resilience.faults import FAULTS

    FAULTS.attach_observer(_ACTIVE.note_io)
    return _ACTIVE


def disable() -> None:
    """Disable the sanitizer (new locks come out plain again)."""
    global _ACTIVE
    if _ACTIVE is None:
        return
    from ..resilience.faults import FAULTS

    FAULTS.detach_observer()
    _ACTIVE = None


def maybe_enable_from_env(environ: Mapping[str, str] | None = None) -> LockOrderSanitizer | None:
    """Enable when ``CRYPTEXT_SANITIZE=1`` is set (CLI entry / conftest hook).

    Library imports never read the environment — the same discipline as
    :func:`repro.resilience.faults.install_env_faults`.
    """
    environ = os.environ if environ is None else environ
    if environ.get(ENV_VAR, "").strip() != "1":
        return None
    return enable()
