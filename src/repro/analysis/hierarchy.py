"""The project's declared lock-order hierarchy and analysis allowlists.

Thirteen modules hold :class:`threading.Lock`/``RLock``s today — across the
dictionary write path, the WAL, delta snapshots, follower tailing,
breaker-aware routing, and the batch shards — and PRs 5-7 each spent review
passes hand-hunting lock-order and IO-under-lock bugs.  This module writes
the hard-won acquisition order down *once*, as data, so that

* the static lint pass (:mod:`repro.analysis.lint`) can reject a ``with``
  nesting that acquires locks against the declared order, and
* the runtime sanitizer (:mod:`repro.analysis.sanitizer`) can verify the
  same order on every acquisition the test suites actually perform.

**The rule:** a thread holding a lock may only acquire locks of strictly
greater rank.  Smaller rank = outer lock.  Locks are identified by *name*
(one name per lock role, not per instance — every shard's bucket lock
shares the rank of ``shard.bucket``), and every lock constructed through
:func:`repro.analysis.sanitizer.tracked_lock` /
:func:`~repro.analysis.sanitizer.tracked_rlock` carries its name in the
source, which is also how the linter learns which attribute holds which
lock.

The declared order (outermost first), as established by PRs 1-7:

1.  ``maintenance.save`` wraps the whole snapshot-save pipeline
    (dictionary snapshot lock, WAL truncation, state counters).
2.  ``maintenance.state`` is taken inside saves but also wraps
    ``dictionary.write`` / ``wal.segment`` reads in ``status()``.
3.  ``replica.route`` (routing decisions) wraps follower state and
    breaker scans.
4.  ``follower.state`` wraps the whole replay path: tail reads, then
    ``dictionary.write`` via ``apply_wal_record``.
5.  ``batch.enrich`` wraps shard refreshes and cache invalidation.
6.  ``dictionary.snapshot`` serializes saves and wraps ``dictionary.write``.
7.  ``dictionary.write`` journals before applying: it wraps
    ``wal.segment`` (journal-before-apply), ``storage.collection``, and —
    via the observer notifications inside ``learn_batch``'s reentrant
    hold — the sharded index's pending-keys lock.
8.  The shard trio: ``shard.build`` > ``shard.pending`` > ``shard.bucket``
    (refresh drains pending under the build lock, then touches buckets).
9.  Leaf-side locks: the query cache, the compiled-bucket LRU, trie
    registry/family locks, the lookup epoch, the fault registry (hit from
    inside ``wal.segment``), and the per-replica breaker.
"""

from __future__ import annotations

#: Lock name -> rank.  A thread holding lock A may acquire lock B only when
#: ``rank(B) > rank(A)``.  Gaps of 10 leave room for future subsystems.
LOCK_RANKS: dict[str, int] = {
    "maintenance.save": 10,
    "maintenance.state": 20,
    "replica.route": 30,
    "follower.state": 40,
    "batch.enrich": 50,
    "dictionary.snapshot": 90,
    "dictionary.write": 100,
    # The shard trio ranks *below* dictionary.write: learn_batch holds the
    # (reentrant) write lock across its per-token applies, and each apply
    # notifies the sharded index, which records pending keys under
    # shard.pending — an edge the sanitizer proved on the first run.
    "shard.build": 102,
    "shard.pending": 104,
    "shard.bucket": 106,
    "wal.segment": 110,
    "storage.collection": 120,
    "storage.cache": 130,
    "dictionary.compiled": 140,
    "matcher.registry": 150,
    "matcher.family": 160,
    # The SymSpell delete-index build lock ranks under matcher.family: a
    # lazily mapped family drains its mmap loader under the family lock and
    # parks delete rows under matcher.deletes inside that hold.
    "matcher.deletes": 165,
    # The process-wide mmap'd shard cache: family loaders read through it
    # while holding matcher.family, so it must rank below (acquire-after)
    # every matcher lock.
    "snapshot.mmap": 168,
    "lookup.epoch": 170,
    "faults.registry": 180,
    "breaker.state": 190,
    # The observability registry and its per-histogram locks are leaf-most:
    # span exits record timings while WAL/replication locks are held, and
    # collect() copies state then *releases* obs.registry before invoking
    # any adapter, so neither lock is ever held across a foreign acquire.
    "obs.registry": 200,
    "obs.metric": 210,
}

#: Locks on the serving hot path: holding one of these across blocking file
#: IO or a sleep stalls reads/writes behind disk latency, so the
#: ``io-under-lock`` lint rule fires inside their ``with`` blocks unless the
#: site is allowlisted below.  Slow-path locks (saves, routing, follower
#: state) are deliberately absent — a snapshot save *is* IO under its lock.
HOT_PATH_LOCKS: frozenset[str] = frozenset(
    {
        "dictionary.write",
        "dictionary.compiled",
        "shard.build",
        "shard.pending",
        "shard.bucket",
        "storage.collection",
        "storage.cache",
        "lookup.epoch",
        "matcher.registry",
        "matcher.family",
        "matcher.deletes",
        "wal.segment",
        "batch.enrich",
    }
)

#: Static-lint allowlist for ``io-under-lock``: ``(path suffix, function)``
#: sites where blocking IO under a hot-path lock is the design, with the
#: reason recorded here so the exemption is auditable.  The WAL's append
#: path is the canonical case — journal-before-apply *requires* the write
#: to happen inside the segment lock, and the persistent O_APPEND handle
#: exists precisely to keep that IO to one write+flush.
ALLOWED_IO_UNDER_LOCK: frozenset[tuple[str, str]] = frozenset(
    {
        # Appending a frame (and group-commit fsync) inside wal.segment is
        # the journal's contract: acknowledge only what is replayable.
        # (``append`` is the span-timing wrapper; ``_append`` holds the
        # lock and performs the IO.)
        ("wal/log.py", "_append"),
        ("wal/log.py", "_inject_append_fault_locked"),
        ("wal/log.py", "_tail_handle_locked"),
        # Torn-tail repair re-reads and truncates the tail under the lock
        # so a concurrent append cannot interleave with the truncate.
        ("wal/log.py", "repair"),
        ("wal/log.py", "sync"),
        # Rotation/truncation/reset rewrite the segment list atomically.
        ("wal/log.py", "truncate_through"),
        ("wal/log.py", "reset"),
        ("wal/log.py", "close"),
    }
)

#: Sanitizer allowlist for lock-held-across-IO events: ``(fault point,
#: lock name)`` pairs that are by-design.  Any other (point, held-lock)
#: combination observed at runtime is reported.
SANITIZER_IO_ALLOWLIST: frozenset[tuple[str, str]] = frozenset(
    {
        # Journal-before-apply: the append (and its fsync) happens inside
        # both the dictionary write lock and the WAL segment lock.
        ("wal.append", "dictionary.write"),
        ("wal.append", "wal.segment"),
        ("wal.fsync", "dictionary.write"),
        ("wal.fsync", "wal.segment"),
        # Batch ingest journals compound records on the same path.
        ("wal.append", "batch.enrich"),
        ("wal.fsync", "batch.enrich"),
        # Follower replay journals nothing, but a leader-side learn under
        # the follower harness still tails within follower.state.
        ("tailer.read", "follower.state"),
        ("follower.poll", "follower.state"),
        # Snapshot saves serialize under dictionary.snapshot and may journal
        # (e.g. a learn applied mid-save by the same thread's reentrant
        # write hold) — a slow path where IO under the lock is the design.
        ("wal.append", "dictionary.snapshot"),
        ("wal.fsync", "dictionary.snapshot"),
        # Snapshot writes run under the save/snapshot locks (slow path) and
        # under the write lock only for the brief dirty-set swap.
        ("snapshot.write", "maintenance.save"),
        ("snapshot.write", "dictionary.snapshot"),
        ("snapshot.write", "dictionary.write"),
        ("snapshot.write", "maintenance.state"),
        ("wal.append", "maintenance.save"),
        ("wal.fsync", "maintenance.save"),
    }
)


def rank_of(name: str) -> int | None:
    """The declared rank of lock ``name`` (``None``: not in the hierarchy)."""
    return LOCK_RANKS.get(name)


def order_allows(held: str, acquiring: str) -> bool:
    """Whether a thread holding ``held`` may acquire ``acquiring``.

    Unranked locks are never constrained (the linter and sanitizer report
    them separately so new locks get ranked instead of silently skipped);
    re-acquiring the same name is the RLock case and is always allowed.
    """
    if held == acquiring:
        return True
    held_rank = LOCK_RANKS.get(held)
    acquiring_rank = LOCK_RANKS.get(acquiring)
    if held_rank is None or acquiring_rank is None:
        return True
    return acquiring_rank > held_rank
