"""Project-aware static lint pass over the package source.

The checker parses every module with :mod:`ast` and runs the rule set in
:mod:`repro.analysis.rules` against it.  The rules are not generic style
police — each encodes a concurrency discipline this project converged on
during PRs 1-7 and was previously enforced only by reviewer memory:

* ``lock-order`` — ``with`` nesting must follow the declared hierarchy
  (:data:`repro.analysis.hierarchy.LOCK_RANKS`), and shared locks must be
  constructed through the tracked factories so they *have* a rank.
* ``io-under-lock`` — no blocking file IO / ``fsync`` / ``time.sleep``
  inside a hot-path lock unless the site is allowlisted in
  :data:`~repro.analysis.hierarchy.ALLOWED_IO_UNDER_LOCK`.
* ``swallowed-exception`` — a bare/overbroad ``except`` must count, log,
  re-raise, or otherwise record what it caught (the follower-tail-thread
  bug class from PR 7).
* ``async-blocking`` — no direct sync blocking calls inside ``async def``
  bodies; offload to the executor instead.
* ``thread-discipline`` — every ``threading.Thread`` states ``daemon=``
  explicitly.
* ``mutable-default`` — no mutable default arguments.
* ``unguarded-write`` — in a class that declares a lock, attributes
  written under the lock must not also be written outside it.
* ``dead-import`` — module-level imports that nothing references.

Findings at a specific site can be suppressed with a trailing pragma
comment — ``# lint: allow=<rule>[,<rule>...] (reason)`` — either on the
offending line or on the ``def`` line of the enclosing function.  Every
pragma should carry a reason; the linter is how the next reader learns
the exemption was deliberate.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LockAttr",
    "ModuleContext",
    "Project",
    "Rule",
    "lint_paths",
    "load_project",
    "main",
]

#: ``# lint: allow=rule-a,rule-b (optional reason)``
_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow=([A-Za-z0-9_,\s-]+)")

_TRACKED_FACTORIES = {"tracked_lock": False, "tracked_rlock": True}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class Rule:
    """A named check run over each module's AST."""

    name: str
    description: str
    check: "object"  # Callable[[ModuleContext, Project], Iterator[Finding]]


@dataclass(frozen=True)
class LockAttr:
    """A lock-holding attribute declared by a class."""

    name: str | None  # hierarchy name; None when constructed untracked
    reentrant: bool
    line: int


@dataclass
class ModuleContext:
    """Parsed module plus the project-aware facts rules need."""

    path: Path
    rel: str  # path relative to the package root, always with "/"
    source: str
    tree: ast.Module
    #: line -> rules allowlisted by a pragma on that line
    allow: dict[int, frozenset[str]] = field(default_factory=dict)
    #: class name -> attribute -> lock declaration
    lock_attrs: dict[str, dict[str, LockAttr]] = field(default_factory=dict)

    def allowed(self, line: int, rule: str) -> bool:
        rules = self.allow.get(line)
        return rules is not None and rule in rules


class Project:
    """The whole lint target: all modules plus cross-module lock maps."""

    def __init__(self, modules: list[ModuleContext]) -> None:
        self.modules = modules
        # attr -> every lock declaration seen under that attribute name,
        # used to resolve `other.lock`-style acquisitions when unambiguous.
        self._attr_decls: dict[str, list[LockAttr]] = {}
        for ctx in modules:
            for attrs in ctx.lock_attrs.values():
                for attr, decl in attrs.items():
                    self._attr_decls.setdefault(attr, []).append(decl)

    def resolve_lock(
        self, ctx: ModuleContext, class_name: str | None, attr: str
    ) -> LockAttr | None:
        """The lock declaration an attribute access refers to, if knowable.

        Resolution order: the enclosing class, then any class in the same
        module, then a project-wide unique attribute name.  Ambiguous or
        unknown attributes resolve to ``None`` and the rules skip them —
        the runtime sanitizer covers what static resolution cannot.
        """
        if class_name is not None:
            decl = ctx.lock_attrs.get(class_name, {}).get(attr)
            if decl is not None:
                return decl
        in_module = [
            attrs[attr] for attrs in ctx.lock_attrs.values() if attr in attrs
        ]
        if len({(d.name, d.reentrant) for d in in_module}) == 1:
            return in_module[0]
        everywhere = self._attr_decls.get(attr, [])
        if len({(d.name, d.reentrant) for d in everywhere}) == 1:
            return everywhere[0]
        return None


def _parse_pragmas(source: str) -> dict[int, frozenset[str]]:
    allow: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        if rules:
            allow[lineno] = rules
    return allow


def _lock_construction(value: ast.expr) -> LockAttr | None:
    """Classify ``tracked_lock(...)`` / ``threading.Lock()`` constructions."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Name) and func.id in _TRACKED_FACTORIES:
        name = None
        if value.args and isinstance(value.args[0], ast.Constant):
            arg = value.args[0].value
            name = arg if isinstance(arg, str) else None
        return LockAttr(name=name, reentrant=_TRACKED_FACTORIES[func.id], line=value.lineno)
    if isinstance(func, ast.Attribute) and func.attr in ("Lock", "RLock"):
        base = func.value
        if isinstance(base, ast.Name) and base.id == "threading":
            return LockAttr(name=None, reentrant=func.attr == "RLock", line=value.lineno)
    return None


def _collect_lock_attrs(tree: ast.Module) -> dict[str, dict[str, LockAttr]]:
    result: dict[str, dict[str, LockAttr]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        attrs: dict[str, LockAttr] = {}
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign):
                continue
            decl = _lock_construction(sub.value)
            if decl is None:
                continue
            for target in sub.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs[target.attr] = decl
        if attrs:
            result[node.name] = attrs
    return result


def load_module(path: Path, root: Path) -> ModuleContext:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return ModuleContext(
        path=path,
        rel=rel,
        source=source,
        tree=tree,
        allow=_parse_pragmas(source),
        lock_attrs=_collect_lock_attrs(tree),
    )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def package_root() -> Path:
    """The installed ``repro`` package directory (the default lint target)."""
    return Path(__file__).resolve().parents[1]


def load_project(paths: Sequence[Path] | None = None, root: Path | None = None) -> Project:
    root = package_root() if root is None else root
    targets = [root] if not paths else list(paths)
    modules = [load_module(path, root) for path in iter_python_files(targets)]
    return Project(modules)


def _function_spans(ctx: ModuleContext) -> list[tuple[int, int, frozenset[str]]]:
    """Spans of functions whose ``def`` line carries a pragma."""
    spans: list[tuple[int, int, frozenset[str]]] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            rules = ctx.allow.get(node.lineno)
            if rules:
                spans.append((node.lineno, node.end_lineno or node.lineno, rules))
    return spans


def _suppressed(ctx: ModuleContext, spans, finding: Finding) -> bool:
    if ctx.allowed(finding.line, finding.rule):
        return True
    return any(
        start <= finding.line <= end and finding.rule in rules
        for start, end, rules in spans
    )


def lint_project(project: Project, rule_names: Iterable[str] | None = None) -> list[Finding]:
    from .rules import ALL_RULES  # late import: rules import types from here

    wanted = None if rule_names is None else set(rule_names)
    rules = [rule for rule in ALL_RULES if wanted is None or rule.name in wanted]
    if wanted is not None:
        unknown = wanted - {rule.name for rule in ALL_RULES}
        if unknown:
            raise ValueError(f"unknown lint rule(s): {', '.join(sorted(unknown))}")
    findings: list[Finding] = []
    for ctx in project.modules:
        spans = _function_spans(ctx)
        for rule in rules:
            for finding in rule.check(ctx, project):
                if not _suppressed(ctx, spans, finding):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def lint_paths(
    paths: Sequence[Path] | None = None,
    rule_names: Iterable[str] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    return lint_project(load_project(paths, root=root), rule_names)


def main(argv: Sequence[str] | None = None) -> int:
    from .rules import ALL_RULES

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the project-aware concurrency lint pass.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the available rules and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit findings as JSON",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name:20s} {rule.description}")
        return 0

    rule_names = None
    if args.rules:
        rule_names = [part.strip() for part in args.rules.split(",") if part.strip()]
    try:
        findings = lint_paths(args.paths or None, rule_names)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.as_json:
        print(
            json.dumps(
                [
                    {
                        "rule": f.rule,
                        "path": f.path,
                        "line": f.line,
                        "message": f.message,
                    }
                    for f in findings
                ],
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.describe())
        count = len(findings)
        noun = "finding" if count == 1 else "findings"
        print(f"lint: {count} {noun}")
    return 1 if findings else 0
