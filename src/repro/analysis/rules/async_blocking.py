"""``async-blocking``: no sync blocking calls directly in ``async def``.

A blocking call on the event-loop thread stalls every coroutine the front
is serving — the asyncio service exists precisely to multiplex waiting.
Flagged inside ``async def`` bodies (nested sync ``def``s are excluded;
they run wherever they are *called*, typically the executor):

* ``open()`` / ``input()``;
* ``time.sleep()`` (use ``await asyncio.sleep()``);
* ``os`` file ops (``fsync``/``replace``/``rename``/``unlink``/``remove``);
* ``pathlib`` IO (``read_text``/``write_text``/``read_bytes``/``write_bytes``);
* ``<future>.result()`` (await it, or wrap with ``asyncio.wrap_future``).

The fix is thread-pool offload — ``loop.run_in_executor(...)`` — which is
how ``api/async_service.py`` bridges the synchronous engine today.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, ModuleContext, Project, Rule
from .common import walk_skipping_nested_defs

NAME = "async-blocking"

_BLOCKING_NAMES = frozenset({"open", "input"})
_PATH_IO = frozenset({"read_text", "write_text", "read_bytes", "write_bytes"})
_OS_IO = frozenset({"fsync", "fdatasync", "replace", "rename", "unlink", "remove"})


def _blocking_label(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name) and func.id in _BLOCKING_NAMES:
        return f"{func.id}()"
    if isinstance(func, ast.Attribute):
        base = func.value.id if isinstance(func.value, ast.Name) else None
        if func.attr == "sleep" and base == "time":
            return "time.sleep()"
        if func.attr in _OS_IO and base == "os":
            return f"os.{func.attr}()"
        if func.attr in _PATH_IO:
            return f".{func.attr}()"
        if func.attr == "result" and not call.args and not call.keywords:
            return ".result()"
    return None


def check(ctx: ModuleContext, project: Project) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        for sub in walk_skipping_nested_defs(node):
            if not isinstance(sub, ast.Call):
                continue
            label = _blocking_label(sub)
            if label is None:
                continue
            yield Finding(
                NAME,
                ctx.rel,
                sub.lineno,
                f"sync blocking call {label} inside 'async def {node.name}'; "
                f"offload it via loop.run_in_executor(...) or use the async "
                f"equivalent",
            )


RULE = Rule(
    name=NAME,
    description="no direct sync blocking calls inside async def bodies",
    check=check,
)
