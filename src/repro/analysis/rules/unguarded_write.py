"""``unguarded-write``: lock-guarded attributes stay lock-guarded.

In a class that declares a lock, any ``self.<attr>`` that is written
inside ``with self.<lock>:`` somewhere is, by that evidence, shared
mutable state — so a *second* write site outside any of the class's
locks is a race (PR 5's ``stop()`` clearing a thread handle that
``start()`` guards was exactly this shape).

Exempt by convention: ``__init__``/``__post_init__`` (construction is
single-threaded), methods named ``*_locked`` (the project idiom for
"caller holds the lock"), and pragma'd sites where single-threaded use
is part of the method's contract.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, ModuleContext, Project, Rule

NAME = "unguarded-write"

_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__enter__", "__exit__"})


def _self_write_targets(stmt: ast.stmt) -> list[tuple[str, int]]:
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    writes = []
    for target in targets:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            writes.append((target.attr, target.lineno))
    return writes


def _holds_class_lock(item: ast.withitem, lock_names: frozenset[str]) -> bool:
    expr = item.context_expr
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in lock_names
    )


def _collect_writes(
    func: ast.FunctionDef | ast.AsyncFunctionDef, lock_names: frozenset[str]
) -> list[tuple[str, int, bool]]:
    """All ``self.<attr>`` writes in ``func`` as (attr, line, under_lock)."""
    writes: list[tuple[str, int, bool]] = []

    def visit(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = guarded or any(
                _holds_class_lock(item, lock_names) for item in node.items
            )
            for stmt in node.body:
                visit(stmt, inner)
            return
        for attr, line in _self_write_targets(node) if isinstance(node, ast.stmt) else []:
            writes.append((attr, line, guarded))
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
                continue
            visit(child, guarded)

    for stmt in func.body:
        visit(stmt, False)
    return writes


def check(ctx: ModuleContext, project: Project) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        lock_attrs = ctx.lock_attrs.get(node.name)
        if not lock_attrs:
            continue
        lock_names = frozenset(lock_attrs)
        per_method: list[tuple[str, list[tuple[str, int, bool]]]] = []
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in _EXEMPT_METHODS or stmt.name.endswith("_locked"):
                continue
            per_method.append((stmt.name, _collect_writes(stmt, lock_names)))
        guarded_attrs = {
            attr
            for _method, writes in per_method
            for attr, _line, under in writes
            if under and attr not in lock_names
        }
        if not guarded_attrs:
            continue
        for method, writes in per_method:
            for attr, line, under in writes:
                if under or attr not in guarded_attrs:
                    continue
                yield Finding(
                    NAME,
                    ctx.rel,
                    line,
                    f"{node.name}.{method} writes self.{attr} outside the "
                    f"class's lock(s), but other sites write it under "
                    f"{', '.join(sorted('self.' + name for name in lock_names))}; "
                    f"guard this write too",
                )


RULE = Rule(
    name=NAME,
    description="attributes written under a class's lock must not also be written outside it",
    check=check,
)
