"""``thread-discipline``: every ``threading.Thread`` states ``daemon=``.

A thread constructed without an explicit ``daemon=`` inherits the
creator's flag — which for the main thread means *non*-daemon, so a
forgotten worker keeps the interpreter alive at shutdown (the WAL tailer
and maintenance scheduler both bit-hit this shape during development).
Making the choice explicit forces the author to decide: daemon threads
for supervised loops that a ``stop()`` joins, non-daemon only with an
owner that provably joins on every exit path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, ModuleContext, Project, Rule

NAME = "thread-discipline"


def _is_thread_ctor(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "Thread"
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "Thread"
        and isinstance(func.value, ast.Name)
        and func.value.id == "threading"
    )


def check(ctx: ModuleContext, project: Project) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not _is_thread_ctor(node):
            continue
        if any(kw.arg == "daemon" for kw in node.keywords):
            continue
        yield Finding(
            NAME,
            ctx.rel,
            node.lineno,
            "threading.Thread(...) without an explicit daemon= flag; "
            "state the shutdown contract (daemon=True for supervised "
            "loops, daemon=False only with a guaranteed join)",
        )


RULE = Rule(
    name=NAME,
    description="threading.Thread must pass daemon= explicitly",
    check=check,
)
