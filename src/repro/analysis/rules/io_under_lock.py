"""``io-under-lock``: no blocking IO while holding a hot-path lock.

Inside a ``with`` block that holds any lock in
:data:`repro.analysis.hierarchy.HOT_PATH_LOCKS`, calls that block on the
filesystem or the clock (``open``, ``os.fsync``, ``Path.write_text``,
``time.sleep``, …) stall every reader/writer queued behind that lock for
the duration of the disk latency.  The WAL append path is the one place
that is the design — journal-before-apply requires the write inside the
segment lock — and such sites are allowlisted per (file, function) in
:data:`~repro.analysis.hierarchy.ALLOWED_IO_UNDER_LOCK` with the reason
recorded next to the entry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..hierarchy import ALLOWED_IO_UNDER_LOCK, HOT_PATH_LOCKS
from ..lint import Finding, ModuleContext, Project, Rule
from .common import iter_functions, iter_lock_events

NAME = "io-under-lock"

#: Bare-name calls that block.
BLOCKING_NAME_CALLS = frozenset({"open", "print", "input"})

#: Method/attribute calls that block (file handles, ``pathlib.Path``,
#: ``os``, ``time.sleep``, ``json.dump`` onto a handle, handle flushes).
BLOCKING_ATTR_CALLS = frozenset(
    {
        "fsync",
        "fdatasync",
        "flush",
        "truncate",
        "sleep",
        "open",
        "read_bytes",
        "read_text",
        "write_bytes",
        "write_text",
        "replace",
        "rename",
        "unlink",
        "rmdir",
        "mkdir",
        "dump",
    }
)


def _blocking_label(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name) and func.id in BLOCKING_NAME_CALLS:
        return f"{func.id}()"
    if isinstance(func, ast.Attribute) and func.attr in BLOCKING_ATTR_CALLS:
        if isinstance(func.value, ast.Name):
            return f"{func.value.id}.{func.attr}()"
        return f".{func.attr}()"
    return None


def _allowlisted(rel: str, func_name: str) -> bool:
    return any(
        rel.endswith(suffix) and func_name == name
        for suffix, name in ALLOWED_IO_UNDER_LOCK
    )


def check(ctx: ModuleContext, project: Project) -> Iterator[Finding]:
    for func, class_name in iter_functions(ctx.tree):
        if _allowlisted(ctx.rel, func.name):
            continue
        for kind, node, _lock, held in iter_lock_events(func, ctx, project, class_name):
            if kind != "call":
                continue
            hot = [lock.name for lock in held if lock.name in HOT_PATH_LOCKS]
            if not hot:
                continue
            label = _blocking_label(node)  # type: ignore[arg-type]
            if label is None:
                continue
            yield Finding(
                NAME,
                ctx.rel,
                node.lineno,
                f"blocking call {label} while holding hot-path lock(s) "
                f"{', '.join(repr(name) for name in hot)}; move the IO "
                f"outside the lock or allowlist the site in "
                f"analysis.hierarchy.ALLOWED_IO_UNDER_LOCK",
            )


RULE = Rule(
    name=NAME,
    description="no blocking file IO / sleep while holding a hot-path lock",
    check=check,
)
