"""``mutable-default``: no mutable default arguments.

A ``def f(x, acc=[])`` default is evaluated once and shared by every
call — in a concurrent system that is a silent cross-thread channel on
top of the usual aliasing surprise.  Use ``None`` and construct inside.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, ModuleContext, Project, Rule

NAME = "mutable-default"

_MUTABLE_CTORS = frozenset({"list", "dict", "set", "bytearray"})


def _mutable_label(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.List):
        return "[]"
    if isinstance(expr, ast.Dict):
        return "{}"
    if isinstance(expr, ast.Set):
        return "{...}"
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in _MUTABLE_CTORS
        and not expr.args
        and not expr.keywords
    ):
        return f"{expr.func.id}()"
    return None


def check(ctx: ModuleContext, project: Project) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            label = _mutable_label(default)
            if label is None:
                continue
            yield Finding(
                NAME,
                ctx.rel,
                default.lineno,
                f"mutable default argument {label} in '{node.name}' is "
                f"shared across calls; default to None and construct "
                f"inside the function",
            )


RULE = Rule(
    name=NAME,
    description="no mutable default arguments",
    check=check,
)
