"""``lock-order``: lexical ``with`` nesting must follow the hierarchy.

Three checks, all keyed off the declared ranks in
:mod:`repro.analysis.hierarchy`:

* a shared lock assigned to ``self.<attr>`` must be constructed through
  ``tracked_lock()``/``tracked_rlock()`` — an anonymous
  ``threading.Lock()`` has no rank and is invisible to the sanitizer;
* a tracked lock's name must actually appear in ``LOCK_RANKS``;
* a ``with`` block (or explicit ``.acquire()``) nested inside another
  lock's ``with`` must acquire a strictly greater rank, and must not
  re-enter a non-reentrant lock.

Only lexically visible nesting is checked here; nesting that spans
function calls is the runtime sanitizer's job.
"""

from __future__ import annotations

from typing import Iterator

from ..hierarchy import LOCK_RANKS, order_allows, rank_of
from ..lint import Finding, ModuleContext, Project, Rule
from .common import iter_functions, iter_lock_events

NAME = "lock-order"


def check(ctx: ModuleContext, project: Project) -> Iterator[Finding]:
    for class_name, attrs in ctx.lock_attrs.items():
        for attr, decl in attrs.items():
            if decl.name is None:
                yield Finding(
                    NAME,
                    ctx.rel,
                    decl.line,
                    f"{class_name}.{attr} is an anonymous threading lock; "
                    f"construct it with tracked_lock()/tracked_rlock() and a "
                    f"name ranked in analysis.hierarchy.LOCK_RANKS",
                )
            elif decl.name not in LOCK_RANKS:
                yield Finding(
                    NAME,
                    ctx.rel,
                    decl.line,
                    f"{class_name}.{attr} is named {decl.name!r}, which has "
                    f"no rank in analysis.hierarchy.LOCK_RANKS; add it so "
                    f"ordering can be checked",
                )

    for func, class_name in iter_functions(ctx.tree):
        for kind, node, lock, held in iter_lock_events(func, ctx, project, class_name):
            if kind not in ("acquire", "acquire-call") or lock is None:
                continue
            for outer in held:
                if outer.name == lock.name:
                    if not lock.reentrant:
                        yield Finding(
                            NAME,
                            ctx.rel,
                            node.lineno,
                            f"re-acquiring non-reentrant lock {lock.name!r} "
                            f"already held by this block (self-deadlock)",
                        )
                    continue
                if not order_allows(outer.name, lock.name):
                    yield Finding(
                        NAME,
                        ctx.rel,
                        node.lineno,
                        f"acquiring {lock.name!r} (rank {rank_of(lock.name)}) "
                        f"while holding {outer.name!r} (rank "
                        f"{rank_of(outer.name)}) inverts the declared lock "
                        f"hierarchy",
                    )


RULE = Rule(
    name=NAME,
    description="with-block lock nesting must follow the declared hierarchy",
    check=check,
)
