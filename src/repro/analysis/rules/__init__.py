"""The lint rule registry (one module per rule; see each for rationale)."""

from __future__ import annotations

from . import (
    async_blocking,
    dead_import,
    io_under_lock,
    lock_order,
    mutable_default,
    swallowed_exception,
    thread_discipline,
    unguarded_write,
)

ALL_RULES = (
    lock_order.RULE,
    io_under_lock.RULE,
    swallowed_exception.RULE,
    async_blocking.RULE,
    thread_discipline.RULE,
    mutable_default.RULE,
    unguarded_write.RULE,
    dead_import.RULE,
)

__all__ = ["ALL_RULES"]
