"""Shared AST helpers for the lint rules."""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import LockAttr, ModuleContext, Project

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
    """Every function in the module, paired with its enclosing class name."""

    def visit(node: ast.AST, class_name: str | None) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, class_name
                yield from visit(child, class_name)
            else:
                yield from visit(child, class_name)

    yield from visit(tree, None)


def lock_for_expr(
    expr: ast.expr, ctx: ModuleContext, project: Project, class_name: str | None
) -> LockAttr | None:
    """Resolve ``self._lock`` / ``shard.lock`` attribute reads to a lock."""
    if not (isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name)):
        return None
    if expr.value.id == "self":
        return project.resolve_lock(ctx, class_name, expr.attr)
    # `other.lock`: never assume the enclosing class's declaration applies.
    return project.resolve_lock(ctx, None, expr.attr)


def iter_lock_events(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    ctx: ModuleContext,
    project: Project,
    class_name: str | None,
) -> Iterator[tuple[str, ast.AST, LockAttr | None, tuple[LockAttr, ...]]]:
    """Walk one function, tracking which locks its ``with`` blocks hold.

    Yields ``(kind, node, lock, held)`` events where ``held`` is the tuple
    of locks lexically held at that point (resolvable ones only — cross-
    function nesting is the runtime sanitizer's job):

    * ``("acquire", expr, lock, held_before)`` — a ``with`` item enters a
      resolvable project lock;
    * ``("acquire-call", call, lock, held)`` — an explicit
      ``lock.acquire(...)`` call (scope unknown, so it is order-checked
      but not pushed onto the held stack);
    * ``("call", call, None, held)`` — any other call expression.

    Nested ``def``/``class``/``lambda`` bodies are skipped; they execute
    under their caller's locks, not the definer's.
    """

    def visit(node: ast.AST, held: tuple[LockAttr, ...]) -> Iterator:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                lock = lock_for_expr(item.context_expr, ctx, project, class_name)
                if lock is not None and lock.name is not None:
                    yield "acquire", item.context_expr, lock, inner
                    inner = inner + (lock,)
                else:
                    yield from visit(item.context_expr, inner)
            for stmt in node.body:
                yield from visit(stmt, inner)
            return
        if isinstance(node, ast.Call):
            lock = None
            if isinstance(node.func, ast.Attribute) and node.func.attr == "acquire":
                lock = lock_for_expr(node.func.value, ctx, project, class_name)
            if lock is not None and lock.name is not None:
                yield "acquire-call", node, lock, held
            else:
                yield "call", node, None, held
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _NESTED_SCOPES):
                continue
            yield from visit(child, held)

    for stmt in func.body:
        yield from visit(stmt, ())


def walk_skipping_nested_defs(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """All nodes in ``func``'s own body, excluding nested scopes."""

    def visit(node: ast.AST) -> Iterator[ast.AST]:
        if isinstance(node, _NESTED_SCOPES):
            return
        yield node
        for child in ast.iter_child_nodes(node):
            yield from visit(child)

    for stmt in func.body:
        yield from visit(stmt)
