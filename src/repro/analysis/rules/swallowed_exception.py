"""``swallowed-exception``: overbroad handlers must account for the catch.

PR 7's worst bug class: a follower tail thread wrapped its loop body in
``except Exception: continue`` and silently ate a decode error forever —
the replica just stopped advancing with nothing in any counter.  The rule:
a bare ``except:``, ``except Exception:``, or ``except BaseException:``
handler must *do something observable* with what it caught — re-raise,
call something (a logger, a counter hook), assign state (an error field,
``self._errors += 1``), or return a non-``None`` verdict to the caller.
A handler body of only ``pass``/``continue``/``return None`` is flagged.

Sites where swallowing genuinely is the contract (e.g. a best-effort
``poll_safely`` wrapper whose *caller* counts failures) carry a pragma
with the reason: ``# lint: allow=swallowed-exception (reason)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, ModuleContext, Project, Rule

NAME = "swallowed-exception"

_BROAD = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:
        return True
    if isinstance(kind, ast.Name):
        return kind.id in _BROAD
    if isinstance(kind, ast.Tuple):
        return any(
            isinstance(elt, ast.Name) and elt.id in _BROAD for elt in kind.elts
        )
    return False


def _accounts_for_catch(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Raise, ast.Call, ast.Assign, ast.AugAssign, ast.AnnAssign)):
                return True
            if isinstance(node, ast.Return):
                value = node.value
                if value is not None and not (
                    isinstance(value, ast.Constant) and value.value is None
                ):
                    return True
    return False


def check(ctx: ModuleContext, project: Project) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node) or _accounts_for_catch(node):
            continue
        caught = "bare except" if node.type is None else "overbroad except"
        yield Finding(
            NAME,
            ctx.rel,
            node.lineno,
            f"{caught} swallows the exception without counting, logging, "
            f"re-raising, or reporting failure; record what was caught or "
            f"narrow the handler",
        )


RULE = Rule(
    name=NAME,
    description="broad except handlers must count/log/re-raise what they catch",
    check=check,
)
