"""``dead-import``: module-level imports that nothing references.

Detection is textual on purpose: with ``from __future__ import
annotations`` every annotation is a string, so a pure-AST "is this Name
loaded" check misses names used only in type positions.  Counting
word-boundary occurrences of the bound name outside the import statement
itself catches annotation uses, docstring-free aliasing, and ``__all__``
re-exports alike.  ``__init__.py`` files are skipped entirely — their
imports *are* the re-export surface.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..lint import Finding, ModuleContext, Project, Rule

NAME = "dead-import"


def _bound_names(node: ast.Import | ast.ImportFrom) -> list[str]:
    names = []
    for alias in node.names:
        if alias.name == "*":
            continue
        if alias.asname is not None:
            names.append(alias.asname)
        elif isinstance(node, ast.Import):
            names.append(alias.name.split(".")[0])
        else:
            names.append(alias.name)
    return names


def check(ctx: ModuleContext, project: Project) -> Iterator[Finding]:
    if ctx.rel.endswith("__init__.py"):
        return
    lines = ctx.source.splitlines()
    for node in ctx.tree.body:
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            continue
        span = range(node.lineno, (node.end_lineno or node.lineno) + 1)
        rest = "\n".join(
            line for number, line in enumerate(lines, start=1) if number not in span
        )
        for name in _bound_names(node):
            if re.search(rf"\b{re.escape(name)}\b", rest) is None:
                yield Finding(
                    NAME,
                    ctx.rel,
                    node.lineno,
                    f"import {name!r} is never referenced in this module",
                )


RULE = Rule(
    name=NAME,
    description="module-level imports must be referenced somewhere",
    check=check,
)
