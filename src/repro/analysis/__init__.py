"""Concurrency correctness tooling: static lint pass + runtime sanitizer.

Two prongs, one declared truth (:mod:`repro.analysis.hierarchy`):

* :mod:`repro.analysis.lint` — an AST-based, project-aware lint pass over
  the package source (lock-order nesting, IO under hot-path locks,
  swallowed exceptions, sync blocking calls in ``async def``, thread
  discipline, mutable defaults, unguarded shared-state writes, dead
  imports).  Run it with ``python -m repro.analysis`` or ``repro check``.
* :mod:`repro.analysis.sanitizer` — an opt-in runtime lock-order sanitizer
  (``CRYPTEXT_SANITIZE=1``) that watches every acquisition the test
  suites actually perform and reports hierarchy inversions, lock-order
  cycles, lock-held-across-IO events, and held-time percentiles.
"""

from __future__ import annotations

from .hierarchy import (
    ALLOWED_IO_UNDER_LOCK,
    HOT_PATH_LOCKS,
    LOCK_RANKS,
    SANITIZER_IO_ALLOWLIST,
    order_allows,
    rank_of,
)
from .sanitizer import (
    ENV_VAR,
    LockOrderSanitizer,
    SanitizerReport,
    Violation,
    active,
    disable,
    enable,
    maybe_enable_from_env,
    tracked_lock,
    tracked_rlock,
)

__all__ = [
    "ALLOWED_IO_UNDER_LOCK",
    "ENV_VAR",
    "HOT_PATH_LOCKS",
    "LOCK_RANKS",
    "LockOrderSanitizer",
    "SANITIZER_IO_ALLOWLIST",
    "SanitizerReport",
    "Violation",
    "active",
    "disable",
    "enable",
    "maybe_enable_from_env",
    "order_allows",
    "rank_of",
    "tracked_lock",
    "tracked_rlock",
]
