"""Visualization data exports.

The CrypText front end renders three interactive views (Figure 1-4 and the
ML benchmark page): a 3D spherical word cloud of Look Up results, timeline
charts of Social Listening aggregates, and the benchmark table of NLP-API
accuracy under perturbation.  A library reproduction does not ship a GUI, but
it ships the *data* those views render, in the JSON-friendly shapes the
original front-end libraries (TagCloud.js, chart.js, dataTables.js) consume:

* :mod:`repro.viz.wordcloud` — word-cloud items with frequency-scaled sizes
  and deterministic 3D sphere coordinates;
* :mod:`repro.viz.timeline` — chart.js-style datasets for frequency and
  sentiment timelines;
* :mod:`repro.viz.benchmark_page` — the ML benchmark page table built from
  robustness sweep results.
"""

from .wordcloud import WordCloudItem, build_word_cloud
from .timeline import build_timeline_chart, build_multi_keyword_chart
from .benchmark_page import build_benchmark_page
from .html_report import build_html_report, write_html_report

__all__ = [
    "WordCloudItem",
    "build_word_cloud",
    "build_timeline_chart",
    "build_multi_keyword_chart",
    "build_benchmark_page",
    "build_html_report",
    "write_html_report",
]
