"""ML benchmark page export (Figure 4 and §III-D).

The paper mentions that "CrypText also dedicates an ML benchmark page that
frequently updates our evaluation of publicly available NLP APIs and models
on noisy human-written texts".  This module assembles that page's data from
robustness sweep results: a dataTables.js-style table (one row per service
and ratio) plus per-service accuracy-vs-ratio series for the Figure-4 chart.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..classifiers.apis import RobustnessPoint
from ..errors import VisualizationError


def build_benchmark_page(
    results: Mapping[str, Sequence[RobustnessPoint]],
    perturbation_source: str = "cryptext",
) -> dict[str, object]:
    """Assemble the benchmark page payload.

    Parameters
    ----------
    results:
        Mapping from service name to its robustness points (as returned by
        :meth:`~repro.classifiers.apis.RobustnessEvaluator.evaluate_many`).
    perturbation_source:
        Which perturbation generator produced the inputs (``cryptext`` or a
        baseline name) — shown on the page so sweeps are comparable.
    """
    if not results:
        raise VisualizationError("at least one service result is required")
    rows: list[dict[str, object]] = []
    series: dict[str, dict[str, list[float]]] = {}
    for service in sorted(results):
        points = sorted(results[service], key=lambda point: point.ratio)
        if not points:
            raise VisualizationError(f"service {service!r} has no robustness points")
        clean_accuracy = next(
            (point.accuracy for point in points if point.ratio == 0.0), points[0].accuracy
        )
        series[service] = {
            "ratios": [point.ratio for point in points],
            "accuracy": [round(point.accuracy, 4) for point in points],
        }
        for point in points:
            rows.append(
                {
                    "service": service,
                    "ratio": point.ratio,
                    "accuracy": round(point.accuracy, 4),
                    "accuracy_drop": round(clean_accuracy - point.accuracy, 4),
                    "num_samples": point.num_samples,
                    "perturbation_source": perturbation_source,
                }
            )
    return {
        "title": "Accuracy of NLP APIs on texts perturbed by "
        + perturbation_source.upper(),
        "columns": [
            "service",
            "ratio",
            "accuracy",
            "accuracy_drop",
            "num_samples",
            "perturbation_source",
        ],
        "rows": rows,
        "series": series,
    }
