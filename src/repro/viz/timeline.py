"""Timeline chart exports (Social Listening, §III-E).

Produces chart.js-style payloads — ``{"labels": [...dates...], "datasets":
[{"label": ..., "data": [...]}]}`` — from :class:`~repro.social.listening`
results, one dataset for post frequency and one for average sentiment (and,
in the multi-keyword variant, one frequency dataset per keyword).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import VisualizationError
from ..social.listening import KeywordUsage


def build_timeline_chart(usage: KeywordUsage) -> dict[str, object]:
    """Frequency + sentiment chart for one monitored keyword."""
    if not usage.timeline:
        return {
            "title": f"usage of {usage.keyword!r} and its perturbations",
            "labels": [],
            "datasets": [],
        }
    labels = [point.date for point in usage.timeline]
    return {
        "title": f"usage of {usage.keyword!r} and its perturbations",
        "labels": labels,
        "datasets": [
            {
                "label": "posts per day",
                "kind": "frequency",
                "data": [point.frequency for point in usage.timeline],
            },
            {
                "label": "average sentiment",
                "kind": "sentiment",
                "data": [round(point.average_sentiment, 4) for point in usage.timeline],
            },
            {
                "label": "negative share",
                "kind": "sentiment",
                "data": [round(point.negative_share, 4) for point in usage.timeline],
            },
        ],
    }


def build_multi_keyword_chart(
    usages: Mapping[str, KeywordUsage], kind: str = "frequency"
) -> dict[str, object]:
    """One chart comparing several keywords on a shared date axis.

    ``kind`` selects the plotted series: ``"frequency"``,
    ``"average_sentiment"`` or ``"negative_share"``.
    """
    if kind not in ("frequency", "average_sentiment", "negative_share"):
        raise VisualizationError(f"unknown chart kind: {kind!r}")
    if not usages:
        raise VisualizationError("at least one keyword usage is required")
    all_dates: set[str] = set()
    for usage in usages.values():
        all_dates.update(point.date for point in usage.timeline)
    labels: Sequence[str] = sorted(all_dates)
    datasets = []
    for keyword in sorted(usages):
        usage = usages[keyword]
        by_date = {point.date: point for point in usage.timeline}
        data = []
        for date in labels:
            point = by_date.get(date)
            if point is None:
                data.append(0 if kind == "frequency" else 0.0)
            elif kind == "frequency":
                data.append(point.frequency)
            elif kind == "average_sentiment":
                data.append(round(point.average_sentiment, 4))
            else:
                data.append(round(point.negative_share, 4))
        datasets.append({"label": keyword, "kind": kind, "data": data})
    return {"title": f"{kind} by keyword", "labels": list(labels), "datasets": datasets}
