"""3D spherical word-cloud export (Figure 1).

The Look Up GUI displays ``P_x`` as an interactive 3D spherical word cloud
(TagCloud.js).  This module produces the data that view renders: one item
per perturbation with a font size scaled by observed frequency and a
deterministic position on the unit sphere (a Fibonacci lattice, which spreads
points evenly without randomness).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.lookup import LookupResult
from ..errors import VisualizationError


@dataclass(frozen=True)
class WordCloudItem:
    """One word of the cloud with display size and sphere position."""

    token: str
    weight: int
    size: float
    x: float
    y: float
    z: float
    is_original: bool
    category: str

    def to_dict(self) -> dict[str, object]:
        """Serialize for the front-end."""
        return {
            "token": self.token,
            "weight": self.weight,
            "size": self.size,
            "x": self.x,
            "y": self.y,
            "z": self.z,
            "is_original": self.is_original,
            "category": self.category,
        }


def _fibonacci_sphere(count: int) -> list[tuple[float, float, float]]:
    """``count`` evenly spread points on the unit sphere."""
    if count == 1:
        return [(0.0, 1.0, 0.0)]
    golden_angle = math.pi * (3.0 - math.sqrt(5.0))
    points: list[tuple[float, float, float]] = []
    for index in range(count):
        y = 1.0 - 2.0 * index / (count - 1)
        radius = math.sqrt(max(0.0, 1.0 - y * y))
        theta = golden_angle * index
        points.append((math.cos(theta) * radius, y, math.sin(theta) * radius))
    return points


def build_word_cloud(
    result: LookupResult,
    min_size: float = 12.0,
    max_size: float = 48.0,
    max_items: int | None = 100,
) -> list[WordCloudItem]:
    """Turn a Look Up result into word-cloud items.

    Sizes are scaled with the logarithm of each token's observed frequency so
    a handful of very frequent spellings do not flatten everything else.

    Raises
    ------
    VisualizationError
        If the result has no matches or the size bounds are inconsistent.
    """
    if min_size <= 0 or max_size < min_size:
        raise VisualizationError(
            f"invalid size bounds: min_size={min_size}, max_size={max_size}"
        )
    matches = list(result.matches)
    if max_items is not None:
        matches = matches[:max_items]
    if not matches:
        raise VisualizationError(
            f"lookup for {result.query!r} produced no matches to visualize"
        )
    log_weights = [math.log1p(match.count) for match in matches]
    lowest, highest = min(log_weights), max(log_weights)
    span = highest - lowest
    positions = _fibonacci_sphere(len(matches))
    items: list[WordCloudItem] = []
    for match, log_weight, (x, y, z) in zip(matches, log_weights, positions):
        scale = 1.0 if span == 0 else (log_weight - lowest) / span
        size = min_size + scale * (max_size - min_size)
        items.append(
            WordCloudItem(
                token=match.token,
                weight=match.count,
                size=round(size, 2),
                x=round(x, 4),
                y=round(y, 4),
                z=round(z, 4),
                is_original=match.is_original,
                category=match.category.value,
            )
        )
    return items
