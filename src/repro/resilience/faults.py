"""First-class fault-injection registry.

The durability and replication layers already survive torn tails, missing
segments, and crashed processes — but until now every test proved it with
ad-hoc monkeypatching.  This module promotes fault injection to a named,
deterministic registry that the unit harness, the chaos suite, and the
CLI (via ``CRYPTEXT_FAULTS``) all share.

Design constraints, in order:

1. **Zero cost disarmed.**  Production call sites guard every hit with::

       if FAULTS.armed:
           FAULTS.hit("wal.append")

   ``armed`` is a plain bool attribute kept in sync with the rule table,
   so the disarmed hot path pays one attribute read and a falsy branch —
   no lock, no dict lookup, no function call.  ``bench_resilience.py``
   asserts this stays under 5% of any real workload.

2. **Deterministic.**  Triggers are counted (``fail=N`` fails the next N
   hits), delays are fixed, and probabilistic rules take an explicit
   seed, so a chaos run replays identically.

3. **Realistic.**  Injected IO faults derive from :class:`OSError`
   (:class:`~repro.errors.InjectedIOError`) so they traverse the same
   ``except OSError`` recovery code organic disk errors do, and torn
   writes (:class:`~repro.errors.TornWrite`) leave genuinely torn bytes
   on disk for repair to find.
"""

from __future__ import annotations

import os
import random
import time
from typing import Callable, Dict, Iterable, Mapping, Optional

from ..analysis.sanitizer import tracked_lock
from ..errors import (
    ConfigurationError,
    InjectedFault,
    InjectedIOError,
    TornWrite,
)

__all__ = [
    "KNOWN_FAULT_POINTS",
    "FaultRule",
    "FaultInjector",
    "FAULTS",
    "parse_fault_spec",
    "install_env_faults",
]

#: The fault points compiled into the codebase.  Arming an unknown point is
#: a configuration error — a typo'd point would otherwise silently never fire.
KNOWN_FAULT_POINTS = (
    "wal.append",
    "wal.fsync",
    "snapshot.write",
    "tailer.read",
    "follower.poll",
    "front.dispatch",
)

#: Points whose failures should look like disk IO errors rather than a
#: generic injected fault, so existing ``except OSError`` recovery runs.
_IO_POINTS = frozenset({"wal.append", "wal.fsync", "snapshot.write", "tailer.read"})

ENV_VAR = "CRYPTEXT_FAULTS"


class FaultRule:
    """One armed trigger for a fault point.

    A rule can combine a delay with a failure (the delay is applied first,
    matching a slow-then-failing disk).  Counters make every trigger
    finite and deterministic:

    - ``fail``: raise on the next *N* hits, then fall dormant.
    - ``torn``: like ``fail`` but raise :class:`TornWrite` carrying
      ``keep_bytes`` for cooperative call sites.
    - ``delay`` / ``delay_times``: sleep ``delay`` seconds on the next
      ``delay_times`` hits (``None`` = every hit while armed).
    - ``probability`` / ``seed``: raise with probability *p* per hit from
      a dedicated seeded RNG.
    """

    __slots__ = (
        "point",
        "fail_remaining",
        "torn_keep_bytes",
        "delay_seconds",
        "delay_remaining",
        "probability",
        "exc_factory",
        "hits",
        "fired",
        "delayed",
        "_rng",
    )

    def __init__(
        self,
        point: str,
        *,
        fail: int = 0,
        torn: Optional[int] = None,
        delay: float = 0.0,
        delay_times: Optional[int] = None,
        probability: float = 0.0,
        seed: int = 0,
        exc: Optional[Callable[[str], BaseException]] = None,
    ) -> None:
        if point not in KNOWN_FAULT_POINTS:
            raise ConfigurationError(
                f"unknown fault point {point!r}; known points: "
                f"{', '.join(KNOWN_FAULT_POINTS)}"
            )
        if fail < 0:
            raise ConfigurationError(f"fault {point}: fail must be >= 0, got {fail}")
        if delay < 0:
            raise ConfigurationError(f"fault {point}: delay must be >= 0, got {delay}")
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"fault {point}: probability must be in [0, 1], got {probability}"
            )
        if torn is not None and point not in ("wal.append", "snapshot.write"):
            raise ConfigurationError(
                f"fault {point}: torn writes are only supported on "
                "wal.append and snapshot.write"
            )
        self.point = point
        # A torn rule is a failing rule: default to one torn failure.
        self.fail_remaining = fail if fail else (1 if torn is not None else 0)
        self.torn_keep_bytes = torn
        self.delay_seconds = float(delay)
        self.delay_remaining = delay_times
        self.probability = float(probability)
        self.exc_factory = exc
        self.hits = 0
        self.fired = 0
        self.delayed = 0
        self._rng = random.Random(seed) if probability else None

    @property
    def exhausted(self) -> bool:
        """True once the rule can never fire or delay again."""
        can_fail = self.fail_remaining > 0 or self.probability > 0.0
        can_delay = self.delay_seconds > 0 and (
            self.delay_remaining is None or self.delay_remaining > 0
        )
        return not (can_fail or can_delay)

    def consume_delay(self) -> float:
        """Return the delay to apply for this hit (0.0 for none) and count it."""
        if self.delay_seconds <= 0:
            return 0.0
        if self.delay_remaining is not None:
            if self.delay_remaining <= 0:
                return 0.0
            self.delay_remaining -= 1
        self.delayed += 1
        return self.delay_seconds

    def consume_failure(self) -> Optional[BaseException]:
        """Return the exception to raise for this hit, or None."""
        fire = False
        if self.fail_remaining > 0:
            self.fail_remaining -= 1
            fire = True
        elif self._rng is not None and self._rng.random() < self.probability:
            fire = True
        if not fire:
            return None
        self.fired += 1
        if self.torn_keep_bytes is not None:
            return TornWrite(self.torn_keep_bytes)
        if self.exc_factory is not None:
            return self.exc_factory(self.point)
        if self.point in _IO_POINTS:
            return InjectedIOError(f"injected IO fault at {self.point}")
        return InjectedFault(f"injected fault at {self.point}")

    def spec(self) -> Dict[str, object]:
        return {
            "point": self.point,
            "fail_remaining": self.fail_remaining,
            "torn_keep_bytes": self.torn_keep_bytes,
            "delay_seconds": self.delay_seconds,
            "delay_remaining": self.delay_remaining,
            "probability": self.probability,
            "hits": self.hits,
            "fired": self.fired,
            "delayed": self.delayed,
        }


class _Scope:
    """Context manager returned by :meth:`FaultInjector.scoped`."""

    def __init__(self, injector: "FaultInjector", point: str) -> None:
        self._injector = injector
        self._point = point

    def __enter__(self) -> "FaultInjector":
        return self._injector

    def __exit__(self, *exc_info: object) -> None:
        self._injector.disarm(self._point)


class FaultInjector:
    """Registry of named fault points with deterministic triggers.

    One process-global instance (:data:`FAULTS`) is shared by every layer;
    tests may build private instances.  All mutation happens under a lock;
    the *disarmed* fast path reads only the :attr:`armed` bool, which is
    updated atomically whenever the rule table changes.
    """

    def __init__(self, *, sleep: Callable[[float], None] = time.sleep) -> None:
        self.armed = False
        self._rules: Dict[str, FaultRule] = {}
        self._lock = tracked_lock("faults.registry")
        self._sleep = sleep
        self._total_fired: Dict[str, int] = {}
        # Passive observer of every hit (the lock-order sanitizer's
        # lock-held-across-IO probe).  Attaching one arms the registry so
        # the ``if FAULTS.armed:`` guards reach hit() — with no rules armed
        # a hit is then just one observer call, never a failure.
        self._observer: Optional[Callable[[str], None]] = None

    # -- arming ---------------------------------------------------------

    def arm(
        self,
        point: str,
        *,
        fail: int = 0,
        torn: Optional[int] = None,
        delay: float = 0.0,
        delay_times: Optional[int] = None,
        probability: float = 0.0,
        seed: int = 0,
        exc: Optional[Callable[[str], BaseException]] = None,
    ) -> FaultRule:
        """Arm *point* with a fresh rule, replacing any existing one."""
        rule = FaultRule(
            point,
            fail=fail,
            torn=torn,
            delay=delay,
            delay_times=delay_times,
            probability=probability,
            seed=seed,
            exc=exc,
        )
        with self._lock:
            self._rules[point] = rule
            self.armed = True
        return rule

    def scoped(self, point: str, **kwargs: object) -> _Scope:
        """Arm *point* and return a context manager that disarms it on exit."""
        self.arm(point, **kwargs)  # type: ignore[arg-type]
        return _Scope(self, point)

    def disarm(self, point: Optional[str] = None) -> None:
        """Disarm one point, or every point when *point* is None."""
        with self._lock:
            if point is None:
                self._rules.clear()
            else:
                self._rules.pop(point, None)
            self.armed = self._armed_locked()

    def _armed_locked(self) -> bool:
        return bool(self._rules) or self._observer is not None

    @property
    def has_rules(self) -> bool:
        """Whether any *failure* rule is armed.

        Distinct from :attr:`armed`, which is also forced true by a passive
        observer (the sanitizer) so guarded call sites reach :meth:`hit`.
        """
        with self._lock:
            return bool(self._rules)

    # -- observation ----------------------------------------------------

    def attach_observer(self, observer: Callable[[str], None]) -> None:
        """Report every hit's point to ``observer`` (one at a time)."""
        with self._lock:
            self._observer = observer
            self.armed = True

    def detach_observer(self) -> None:
        with self._lock:
            self._observer = None
            self.armed = self._armed_locked()

    # -- the hot-path hit -----------------------------------------------

    def hit(self, point: str, *, apply_delay: bool = True) -> None:
        """Trigger *point*: sleep if a delay is armed, raise if a failure is.

        Call sites guard this with ``if FAULTS.armed:`` so the disarmed
        path never reaches here.  Synchronous callers use the default
        blocking delay; async callers pass ``apply_delay=False`` and
        apply :meth:`consume_delay` themselves on the event loop.
        """
        observer = self._observer
        if observer is not None:
            observer(point)
        delay = 0.0
        with self._lock:
            rule = self._rules.get(point)
            if rule is None:
                return
            rule.hits += 1
            if apply_delay:
                delay = rule.consume_delay()
            failure = rule.consume_failure()
            if failure is not None:
                self._total_fired[point] = self._total_fired.get(point, 0) + 1
            if rule.exhausted:
                del self._rules[point]
                self.armed = self._armed_locked()
        if delay > 0:
            self._sleep(delay)
        if failure is not None:
            raise failure

    def consume_delay(self, point: str) -> float:
        """Pop this hit's delay for *point* without sleeping (async callers)."""
        with self._lock:
            rule = self._rules.get(point)
            if rule is None:
                return 0.0
            return rule.consume_delay()

    # -- introspection --------------------------------------------------

    def fired(self, point: str) -> int:
        """Total failures ever injected at *point* (survives disarm)."""
        with self._lock:
            return self._total_fired.get(point, 0)

    def status(self) -> Dict[str, object]:
        with self._lock:
            return {
                "armed": self.armed,
                "rules": {point: rule.spec() for point, rule in self._rules.items()},
                "total_fired": dict(self._total_fired),
            }

    def reset(self) -> None:
        """Disarm everything and clear lifetime counters (test teardown).

        An attached observer survives — the sanitizer's lifecycle is
        managed by :func:`repro.analysis.sanitizer.enable`/``disable``, not
        by fault-rule teardown.
        """
        with self._lock:
            self._rules.clear()
            self._total_fired.clear()
            self.armed = self._armed_locked()


#: The process-global registry every production call site guards on.
FAULTS = FaultInjector()


def parse_fault_spec(spec: str) -> Dict[str, Dict[str, object]]:
    """Parse a ``CRYPTEXT_FAULTS`` spec string into per-point kwargs.

    Grammar: ``point:key=value,key=value;point:...`` — e.g.::

        wal.fsync:fail=3;front.dispatch:delay=0.05,delay_times=10
        tailer.read:probability=0.2,seed=7
        wal.append:torn=12

    Keys map onto :meth:`FaultInjector.arm` keyword arguments.
    """
    rules: Dict[str, Dict[str, object]] = {}
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        point, sep, body = clause.partition(":")
        point = point.strip()
        if not sep or not point:
            raise ConfigurationError(
                f"malformed fault clause {clause!r}: expected 'point:key=value,...'"
            )
        kwargs: Dict[str, object] = {}
        for item in body.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not key or not value:
                raise ConfigurationError(
                    f"malformed fault trigger {item!r} for point {point!r}"
                )
            if key in ("fail", "torn", "delay_times", "seed"):
                try:
                    kwargs[key] = int(value)
                except ValueError:
                    raise ConfigurationError(
                        f"fault {point}: {key} must be an integer, got {value!r}"
                    ) from None
            elif key in ("delay", "probability"):
                try:
                    kwargs[key] = float(value)
                except ValueError:
                    raise ConfigurationError(
                        f"fault {point}: {key} must be a number, got {value!r}"
                    ) from None
            else:
                raise ConfigurationError(
                    f"fault {point}: unknown trigger {key!r}; expected one of "
                    "fail, torn, delay, delay_times, probability, seed"
                )
        rules[point] = kwargs
    return rules


def install_env_faults(
    environ: Optional[Mapping[str, str]] = None,
    injector: Optional[FaultInjector] = None,
) -> Iterable[str]:
    """Arm faults described by the ``CRYPTEXT_FAULTS`` environment variable.

    Returns the points armed (empty when the variable is unset/blank) so
    the CLI can log what chaos it is running under.  Called once from CLI
    entry; library imports never read the environment.
    """
    environ = os.environ if environ is None else environ
    injector = FAULTS if injector is None else injector
    spec = environ.get(ENV_VAR, "").strip()
    if not spec:
        return ()
    parsed = parse_fault_spec(spec)
    for point, kwargs in parsed.items():
        injector.arm(point, **kwargs)  # type: ignore[arg-type]
    return tuple(parsed)
