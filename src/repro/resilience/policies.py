"""Resilience policies: retry with jittered backoff, propagated request
deadlines, and per-replica circuit breakers.

All three are dependency-injectable (clock, sleep, RNG) so tests drive
them deterministically without real waiting.
"""

from __future__ import annotations

import contextlib
import contextvars
import random
import threading
import time
from typing import Callable, Dict, Iterator, Optional, Tuple, Type, TypeVar

from ..analysis.sanitizer import tracked_lock
from ..errors import ConfigurationError, DeadlineExceededError

__all__ = [
    "RetryPolicy",
    "Deadline",
    "active_deadline",
    "check_deadline",
    "CircuitBreaker",
]

T = TypeVar("T")


# ---------------------------------------------------------------------------
# Retry
# ---------------------------------------------------------------------------


class RetryPolicy:
    """Retry transient failures with exponential backoff and full jitter.

    Attempt *i* (0-based) sleeps ``uniform(0, min(max_delay, base_delay *
    2**i))`` before retrying — the "full jitter" strategy, which spreads
    synchronized retry storms across the whole backoff window instead of
    clustering them at its edge.

    ``retry_on`` defaults to :class:`OSError`: the policy exists for
    transient IO (a follower tailing a segment mid-rotation, a slow disk),
    not for application errors, which should propagate immediately.
    """

    def __init__(
        self,
        attempts: int = 3,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        retry_on: Tuple[Type[BaseException], ...] = (OSError,),
        *,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not isinstance(attempts, int) or attempts < 1:
            raise ConfigurationError(f"attempts must be an integer >= 1, got {attempts!r}")
        if base_delay < 0:
            raise ConfigurationError(f"base_delay must be >= 0, got {base_delay!r}")
        if max_delay < base_delay:
            raise ConfigurationError(
                f"max_delay ({max_delay!r}) must be >= base_delay ({base_delay!r})"
            )
        self.attempts = attempts
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.retry_on = tuple(retry_on)
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()

    def backoff(self, attempt: int) -> float:
        """The jittered delay after 0-based *attempt* fails."""
        ceiling = min(self.max_delay, self.base_delay * (2 ** attempt))
        if ceiling <= 0:
            return 0.0
        return self._rng.uniform(0.0, ceiling)

    def call(self, fn: Callable[..., T], *args: object, **kwargs: object) -> T:
        """Invoke *fn*, retrying ``retry_on`` failures up to ``attempts`` times.

        An active request deadline short-circuits the retry loop: once the
        budget is spent there is no point sleeping toward an answer the
        caller will never see.
        """
        last: Optional[BaseException] = None
        for attempt in range(self.attempts):
            try:
                return fn(*args, **kwargs)
            except self.retry_on as exc:
                last = exc
                if attempt == self.attempts - 1:
                    raise
                deadline = active_deadline()
                if deadline is not None and deadline.expired:
                    raise
                self._sleep(self.backoff(attempt))
        raise last  # type: ignore[misc]  # unreachable; satisfies type-checkers


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------

_CURRENT_DEADLINE: contextvars.ContextVar[Optional["Deadline"]] = contextvars.ContextVar(
    "cryptext_request_deadline", default=None
)


class Deadline:
    """An absolute point in (monotonic) time a request must finish by.

    Created at the edge (the async front) from ``config.
    request_deadline_seconds`` and propagated through handler dispatch via
    a :mod:`contextvars` variable, so deep layers — the replica router,
    retry loops — can abort work nobody is waiting for without threading
    a parameter through every signature.
    """

    __slots__ = ("expires_at", "budget", "_clock")

    def __init__(
        self,
        expires_at: float,
        *,
        budget: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.expires_at = float(expires_at)
        self.budget = budget
        self._clock = clock

    @classmethod
    def after(
        cls, seconds: float, *, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        if seconds <= 0:
            raise ConfigurationError(f"deadline must be positive, got {seconds!r}")
        return cls(clock() + seconds, budget=seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            budget = f"{self.budget:g}s " if self.budget is not None else ""
            raise DeadlineExceededError(f"{what} exceeded its {budget}deadline")

    @contextlib.contextmanager
    def activate(self) -> Iterator["Deadline"]:
        """Make this the ambient deadline for the current context."""
        token = _CURRENT_DEADLINE.set(self)
        try:
            yield self
        finally:
            _CURRENT_DEADLINE.reset(token)


def active_deadline() -> Optional[Deadline]:
    """The ambient deadline for this context, or None."""
    return _CURRENT_DEADLINE.get()


def check_deadline(what: str = "request") -> None:
    """Raise if the ambient deadline (if any) has expired; cheap no-op otherwise."""
    deadline = _CURRENT_DEADLINE.get()
    if deadline is not None:
        deadline.check(what)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class CircuitBreaker:
    """Classic closed → open → half-open breaker guarding one replica.

    - **closed**: all calls flow; ``failure_threshold`` *consecutive*
      failures trip it open.
    - **open**: calls are refused until ``recovery_seconds`` elapse.
    - **half-open**: up to ``half_open_probes`` trial calls are admitted;
      if they all succeed the breaker closes, any failure re-opens it
      (restarting the recovery clock).

    :meth:`available` is a non-mutating eligibility check for routing
    scans; :meth:`allow` is the mutating admission (it books half-open
    probe slots).  Callers must pair each admitted call with exactly one
    :meth:`record_success` or :meth:`record_failure`.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_seconds: float = 30.0,
        *,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
    ) -> None:
        if not isinstance(failure_threshold, int) or failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be an integer >= 1, got {failure_threshold!r}"
            )
        if recovery_seconds <= 0:
            raise ConfigurationError(
                f"recovery_seconds must be positive, got {recovery_seconds!r}"
            )
        if not isinstance(half_open_probes, int) or half_open_probes < 1:
            raise ConfigurationError(
                f"half_open_probes must be an integer >= 1, got {half_open_probes!r}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_seconds = float(recovery_seconds)
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = tracked_lock("breaker.state")
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._times_opened = 0
        self._rejected = 0

    # -- state transitions (call with lock held) ------------------------

    def _open_locked(self) -> None:
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._times_opened += 1

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.recovery_seconds
        ):
            self._state = self.HALF_OPEN
            self._probes_in_flight = 0
            self._probe_successes = 0

    # -- public API -----------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def available(self) -> bool:
        """Would :meth:`allow` admit a call right now?  Never mutates."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN:
                return self._probes_in_flight < self.half_open_probes
            return False

    def allow(self) -> bool:
        """Admit a call (booking a probe slot when half-open)."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN:
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    return True
            self._rejected += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._state = self.CLOSED
                    self._consecutive_failures = 0
                    self._probes_in_flight = 0
                    self._probe_successes = 0
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._open_locked()
            elif self._state == self.CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.failure_threshold:
                    self._open_locked()
            # Already open: the failure came from a call admitted before the
            # trip (or a poll racing the transition); the clock keeps running.

    def status(self) -> Dict[str, object]:
        with self._lock:
            self._maybe_half_open_locked()
            opened_for = (
                self._clock() - self._opened_at if self._state == self.OPEN else 0.0
            )
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "recovery_seconds": self.recovery_seconds,
                "open_for_seconds": opened_for,
                "times_opened": self._times_opened,
                "rejected_calls": self._rejected,
            }
