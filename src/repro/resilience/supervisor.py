"""Cross-process follower supervision.

PR 6's followers run inside the leader's process; the WAL tailer is
file-based, so nothing but wiring stopped them from being real OS
processes.  This module is that wiring: a :class:`ReplicaSupervisor`
spawns ``python -m repro.cli replica run --follow-only`` workers — each
an independent process hydrating from the snapshot chain and tailing the
leader's WAL — health-checks them over heartbeat status files, and
restarts crashed workers with capped exponential backoff.

The status file is the whole supervision protocol: each worker rewrites
it atomically (temp file + ``os.replace``) every status interval with its
pid, applied sequence, token count, content fingerprint, and poll
counters.  A worker is *healthy* when its process is alive **and** its
heartbeat is fresh — a live process with a stuck heartbeat (hung poll,
wedged disk) counts as unhealthy, which is exactly the failure a pipe- or
pid-only check would miss.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from ..config import CrypTextConfig, DEFAULT_CONFIG
from ..errors import ConfigurationError, ResilienceError

__all__ = ["WorkerHandle", "ReplicaSupervisor"]

_SRC_ROOT = Path(__file__).resolve().parents[2]


class WorkerHandle:
    """Bookkeeping for one supervised worker process."""

    __slots__ = (
        "name",
        "status_file",
        "log_file",
        "process",
        "restarts",
        "backoff",
        "next_start_at",
        "last_exit_code",
    )

    def __init__(self, name: str, status_file: Path, log_file: Path) -> None:
        self.name = name
        self.status_file = status_file
        self.log_file = log_file
        self.process: Optional[subprocess.Popen] = None
        self.restarts = 0
        self.backoff = 0.0
        self.next_start_at = 0.0
        self.last_exit_code: Optional[int] = None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


class ReplicaSupervisor:
    """Run and babysit follow-only replica worker processes.

    Workers read the same snapshot directory (and WAL directory) as the
    leader but never write to either, so any number can run beside one
    leader process holding the :class:`SingleWriterGuard`.  The
    supervisor is deliberately poll-driven — call :meth:`check`
    periodically (or let :meth:`run` loop for you) and it will reap and
    restart whatever died since the last call.
    """

    def __init__(
        self,
        snapshot_dir: "Path | str",
        *,
        wal_dir: "Path | str | None" = None,
        workers: int = 2,
        config: CrypTextConfig = DEFAULT_CONFIG,
        work_dir: "Path | str | None" = None,
        poll_interval: Optional[float] = None,
        status_interval: float = 0.2,
        heartbeat_timeout: Optional[float] = None,
        restart_backoff: float = 0.25,
        max_restart_backoff: float = 5.0,
        catchup_batch: Optional[int] = None,
        python: str = sys.executable,
        env_overrides: Optional[Mapping[str, str]] = None,
        clock=time.monotonic,
    ) -> None:
        if not isinstance(workers, int) or workers < 1:
            raise ConfigurationError(f"workers must be an integer >= 1, got {workers!r}")
        if status_interval <= 0:
            raise ConfigurationError(
                f"status_interval must be positive, got {status_interval!r}"
            )
        if restart_backoff <= 0 or max_restart_backoff < restart_backoff:
            raise ConfigurationError(
                "restart_backoff must be positive and <= max_restart_backoff"
            )
        self.snapshot_dir = Path(snapshot_dir)
        self.wal_dir = Path(wal_dir) if wal_dir is not None else None
        self.config = config
        self.work_dir = (
            Path(work_dir) if work_dir is not None else self.snapshot_dir / "replicas"
        )
        self.poll_interval = (
            poll_interval if poll_interval is not None else config.replica_poll_interval
        )
        self.status_interval = float(status_interval)
        # Workers heartbeat every status_interval; tolerate a few missed
        # beats (slow CI disk) before declaring a live process unhealthy.
        self.heartbeat_timeout = (
            heartbeat_timeout
            if heartbeat_timeout is not None
            else max(2.0, 10.0 * self.status_interval)
        )
        self.restart_backoff = float(restart_backoff)
        self.max_restart_backoff = float(max_restart_backoff)
        self.catchup_batch = catchup_batch
        self.python = python
        self.env_overrides = dict(env_overrides) if env_overrides else {}
        self._clock = clock
        self._started = False
        self.workers: List[WorkerHandle] = []
        self.work_dir.mkdir(parents=True, exist_ok=True)
        for index in range(workers):
            name = f"worker-{index}"
            self.workers.append(
                WorkerHandle(
                    name,
                    self.work_dir / f"{name}.status.json",
                    self.work_dir / f"{name}.log",
                )
            )

    # -- spawning -------------------------------------------------------

    def _command(self, worker: WorkerHandle) -> List[str]:
        cmd = [
            self.python,
            "-m",
            "repro.cli",
            "replica",
            "run",
            "--follow-only",
            "--db",
            str(self.snapshot_dir),
            "--name",
            worker.name,
            "--status-file",
            str(worker.status_file),
            "--poll-interval",
            str(self.poll_interval),
            "--status-interval",
            str(self.status_interval),
        ]
        if self.wal_dir is not None:
            cmd += ["--wal-dir", str(self.wal_dir)]
        if self.catchup_batch is not None:
            cmd += ["--catchup-batch", str(self.catchup_batch)]
        return cmd

    def _spawn(self, worker: WorkerHandle) -> None:
        env = dict(os.environ)
        src = str(_SRC_ROOT)
        existing = env.get("PYTHONPATH", "")
        if src not in existing.split(os.pathsep):
            env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        env.update(self.env_overrides)
        # Stale heartbeats from a previous incarnation must not mask a
        # worker that dies before its first beat.
        try:
            worker.status_file.unlink()
        except FileNotFoundError:
            pass
        log_handle = open(worker.log_file, "ab")
        try:
            worker.process = subprocess.Popen(
                self._command(worker),
                stdout=log_handle,
                stderr=subprocess.STDOUT,
                stdin=subprocess.DEVNULL,
                env=env,
                cwd=str(self.snapshot_dir),
            )
        finally:
            log_handle.close()
        worker.last_exit_code = None

    def start(self) -> None:
        """Spawn every worker.  Idempotent."""
        if self._started:
            return
        self._started = True
        for worker in self.workers:
            self._spawn(worker)

    # -- health + restarts ----------------------------------------------

    def read_heartbeat(self, worker: WorkerHandle) -> Optional[Dict[str, object]]:
        """The worker's last atomically-written status payload, or None."""
        try:
            raw = worker.status_file.read_text(encoding="utf-8")
        except (OSError, FileNotFoundError):
            return None
        try:
            payload = json.loads(raw)
        except ValueError:
            # Mid-replace on a non-atomic filesystem; treat as missing.
            return None
        return payload if isinstance(payload, dict) else None

    def _heartbeat_fresh(self, heartbeat: Optional[Dict[str, object]]) -> bool:
        if heartbeat is None:
            return False
        updated = heartbeat.get("updated_at")
        if not isinstance(updated, (int, float)):
            return False
        return (time.time() - float(updated)) <= self.heartbeat_timeout

    def healthy(self, worker: WorkerHandle) -> bool:
        return worker.alive() and self._heartbeat_fresh(self.read_heartbeat(worker))

    def check(self) -> Dict[str, object]:
        """Reap dead workers, restart those whose backoff has elapsed.

        Returns a summary of what happened this round; call it on a loop.
        """
        if not self._started:
            raise ResilienceError("supervisor not started")
        now = self._clock()
        restarted: List[str] = []
        waiting: List[str] = []
        for worker in self.workers:
            if worker.alive():
                if self._heartbeat_fresh(self.read_heartbeat(worker)):
                    # A healthy stretch earns the worker a clean slate.
                    worker.backoff = 0.0
                continue
            if worker.process is not None and worker.last_exit_code is None:
                worker.last_exit_code = worker.process.poll()
            if worker.backoff == 0.0:
                worker.backoff = self.restart_backoff
                worker.next_start_at = now + worker.backoff
            if now < worker.next_start_at:
                waiting.append(worker.name)
                continue
            self._spawn(worker)
            worker.restarts += 1
            worker.backoff = min(worker.backoff * 2.0, self.max_restart_backoff)
            worker.next_start_at = now + worker.backoff
            restarted.append(worker.name)
        return {
            "restarted": restarted,
            "waiting_backoff": waiting,
            "healthy": sum(1 for w in self.workers if self.healthy(w)),
            "workers": len(self.workers),
        }

    def status(self) -> Dict[str, object]:
        members = []
        for worker in self.workers:
            heartbeat = self.read_heartbeat(worker)
            members.append(
                {
                    "name": worker.name,
                    "pid": worker.pid,
                    "alive": worker.alive(),
                    "healthy": worker.alive() and self._heartbeat_fresh(heartbeat),
                    "restarts": worker.restarts,
                    "last_exit_code": worker.last_exit_code,
                    "heartbeat": heartbeat,
                }
            )
        return {
            "snapshot_dir": str(self.snapshot_dir),
            "wal_dir": str(self.wal_dir) if self.wal_dir is not None else None,
            "started": self._started,
            "workers": members,
        }

    # -- convergence + lifecycle ----------------------------------------

    def wait_converged(
        self,
        fingerprint: str,
        *,
        timeout: float = 30.0,
        check_interval: float = 0.1,
        min_applied_seq: Optional[int] = None,
    ) -> bool:
        """Block until every worker is healthy and reports *fingerprint*.

        Drives :meth:`check` while waiting, so crashed workers restart.
        Returns False on timeout instead of raising — callers decide how
        loud to be.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            self.check()
            converged = 0
            for worker in self.workers:
                heartbeat = self.read_heartbeat(worker)
                if not (worker.alive() and self._heartbeat_fresh(heartbeat)):
                    continue
                if heartbeat.get("fingerprint") != fingerprint:
                    continue
                if min_applied_seq is not None:
                    applied = heartbeat.get("applied_seq")
                    if not isinstance(applied, int) or applied < min_applied_seq:
                        continue
                converged += 1
            if converged == len(self.workers):
                return True
            time.sleep(check_interval)
        return False

    def run(self, *, rounds: Optional[int] = None, interval: float = 0.5) -> None:
        """Supervision loop: check every *interval* seconds.

        ``rounds`` bounds the loop for tests/CLI smoke; None runs until
        interrupted.
        """
        done = 0
        while rounds is None or done < rounds:
            self.check()
            done += 1
            if rounds is not None and done >= rounds:
                break
            time.sleep(interval)

    def kill_worker(self, name: str, sig: int = signal.SIGKILL) -> bool:
        """Deliver *sig* to a worker by name (chaos testing)."""
        for worker in self.workers:
            if worker.name == name and worker.alive():
                assert worker.process is not None
                worker.process.send_signal(sig)
                return True
        return False

    def stop(self, *, grace_seconds: float = 5.0) -> None:
        """Terminate every worker: SIGTERM, wait, then SIGKILL stragglers."""
        for worker in self.workers:
            if worker.alive():
                assert worker.process is not None
                worker.process.terminate()
        deadline = time.monotonic() + grace_seconds
        for worker in self.workers:
            if worker.process is None:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            try:
                worker.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                worker.process.kill()
                worker.process.wait()
        self._started = False

    def __enter__(self) -> "ReplicaSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
