"""Resilience subsystem: fault injection, retry/deadline/breaker policies,
and cross-process follower supervision.

Three pillars, each usable on its own:

- :mod:`repro.resilience.faults` — a process-global :class:`FaultInjector`
  registry of named fault points compiled into the WAL, snapshot, tailer,
  follower, and async-front hot paths.  Disarmed (the default) a point
  costs one attribute read; armed it injects deterministic failures —
  fail-next-N, fixed delays, torn writes, seeded probabilistic faults —
  so chaos tests and the CLI drive the same machinery.
- :mod:`repro.resilience.policies` — :class:`RetryPolicy` (exponential
  backoff + full jitter for transient IO), :class:`Deadline` (propagated
  from the async front through handler dispatch via a context variable),
  and :class:`CircuitBreaker` (closed → open → half-open per replica).
- :mod:`repro.resilience.supervisor` — :class:`ReplicaSupervisor` running
  followers as real OS processes (``repro replica run --follow-only``),
  health-checked over heartbeat status files and restarted with capped
  backoff when they crash.

This package must stay import-light: it is pulled in by the WAL and
replication hot paths, so it may depend only on :mod:`repro.errors` and
:mod:`repro.config` — never the other way around.
"""

from .faults import (
    FAULTS,
    KNOWN_FAULT_POINTS,
    FaultInjector,
    FaultRule,
    install_env_faults,
    parse_fault_spec,
)
from .policies import (
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    active_deadline,
    check_deadline,
)
from .supervisor import ReplicaSupervisor, WorkerHandle

__all__ = [
    "FAULTS",
    "KNOWN_FAULT_POINTS",
    "FaultInjector",
    "FaultRule",
    "install_env_faults",
    "parse_fault_spec",
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "active_deadline",
    "check_deadline",
    "ReplicaSupervisor",
    "WorkerHandle",
]
