"""Configuration objects for the CrypText reproduction.

The paper exposes two user-facing hyper-parameters:

* the *phonetic level* ``k`` — the number of extra leading characters
  (beyond the first) that the customized Soundex encoding keeps verbatim;
  the paper stores hash-maps ``H_k`` for ``k <= 2`` and defaults the
  interactive functions to ``k = 1``;
* the *edit-distance bound* ``d`` — the maximum Levenshtein distance
  between a perturbation and its original word for the pair to satisfy the
  SMS ("same Sound, same Meaning, different Spelling") property; the paper
  defaults to ``d = 3``.

The perturbation function additionally takes a *manipulation ratio* ``r``
(the paper demonstrates 15%, 25% and 50%).

:class:`CrypTextConfig` gathers these together with the operational knobs of
the architecture (cache TTL/size, crawler batch size, RNG seed) so that every
component of the system can be constructed from a single validated object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from .errors import ConfigurationError

#: The phonetic levels for which the paper materializes hash-maps ``H_k``.
SUPPORTED_PHONETIC_LEVELS: tuple[int, ...] = (0, 1, 2)

#: Default phonetic level used by Look Up / Normalization (paper §III-B).
DEFAULT_PHONETIC_LEVEL: int = 1

#: Default Levenshtein bound used by Look Up / Normalization (paper §III-B).
DEFAULT_EDIT_DISTANCE: int = 3

#: Manipulation ratios showcased by the paper's Perturbation function.
DEFAULT_PERTURBATION_RATIOS: tuple[float, ...] = (0.15, 0.25, 0.50)

#: Legal values of :attr:`CrypTextConfig.degraded_read_policy` — what the
#: replica set does when every follower is stale, broken, or circuit-open.
DEGRADED_READ_POLICIES: tuple[str, ...] = ("leader", "stale", "fail_fast")

#: Legal values of :attr:`CrypTextConfig.match_kernel` — mirrors
#: ``repro.core.kernels.MATCH_KERNELS`` (declared here too so config stays
#: importable without the core package; a test asserts they agree).
MATCH_KERNEL_POLICIES: tuple[str, ...] = ("auto", "myers", "banded", "symspell")


@dataclass(frozen=True)
class CrypTextConfig:
    """Validated bundle of every tunable used across the system.

    Parameters
    ----------
    phonetic_level:
        The ``k`` parameter of the customized Soundex encoding.  Must be one
        of :data:`SUPPORTED_PHONETIC_LEVELS`.
    edit_distance:
        The ``d`` parameter bounding the Levenshtein distance of the SMS
        property.  Must be a non-negative integer.
    use_transpositions:
        Count an adjacent transposition ("teh" for "the") as a single edit
        (optimal-string-alignment / Damerau distance) instead of two.  This
        is the one distance-policy switch consumed identically by Look Up,
        the SMS check, and Normalization candidate retrieval — with it off a
        ``d = 1`` Normalization would silently drop exactly the swap
        perturbations an ``SMSCheck(use_transpositions=True)`` certifies.
    max_phonetic_level:
        The largest ``k`` for which the dictionary materializes a hash-map
        ``H_k`` (the paper stores all ``k <= 2``).
    perturbation_ratio:
        Default manipulation ratio ``r`` used by the Perturbation function.
    case_sensitive:
        Whether the Perturbation function samples case-sensitive
        perturbations (the paper supports both modes).
    cache_enabled / cache_ttl_seconds / cache_max_entries:
        Knobs of the Redis-style query cache.
    compiled_buckets:
        Serve Look Up matching from trie-compiled sound buckets
        (:mod:`repro.core.matcher`) instead of a per-entry bounded
        Levenshtein scan.  Results are identical either way; disabling
        falls back to the linear path (debugging / memory-constrained
        deployments).
    match_kernel:
        Which compiled-bucket inner loop serves matches
        (:mod:`repro.core.kernels`): ``"auto"`` (the default) picks the
        benchmark-measured winner per (bucket size, distance bound);
        ``"myers"`` forces the bit-parallel traversal, ``"banded"`` the
        PR 2/3 DP rows, ``"symspell"`` the delete-neighborhood index.
        Results are byte-identical across kernels — ineligible selections
        (transpositions under ``myers``, ``d > 2`` under ``symspell``)
        degrade to an eligible kernel rather than erroring.
    snapshot_shards:
        Number of shard files the v2 snapshot layout splits the dictionary
        across (``dictionary.snapshot.d/shard-NN.bin``).  ``0`` (the
        default) keeps the v1 single-file JSON snapshot; any positive count
        writes the memory-mappable sharded layout, which followers hydrate
        lazily via ``mmap`` and share page-cache-resident.
    snapshot_dir:
        Default directory for warm-start snapshots
        (:mod:`repro.storage.snapshot`): ``save_snapshot()`` /
        ``load_snapshot()`` calls without an explicit path read and write
        ``dictionary.snapshot.json`` here.  ``None`` (the default) means
        snapshot operations require an explicit path.
    snapshot_on_save:
        When persisting a dictionary (the CLI ``build`` command, service
        admin saves), also write the warm-start snapshot alongside the
        JSONL dump so the next process start skips trie recompilation.
    wal_dir:
        Default directory for the segmented change log
        (:mod:`repro.wal.log`).  ``None`` (the default) means no WAL is
        opened implicitly; durability entry points
        (``PerturbationDictionary.recover``, the maintenance scheduler, the
        CLI ``wal`` commands) require an explicit directory instead.
    wal_segment_bytes:
        Size at which the change log rotates to a fresh segment file.
        Smaller segments mean finer-grained truncation after snapshots at
        the cost of more files.
    snapshot_autosave_interval:
        Seconds between automatic snapshot refreshes performed by the
        :class:`~repro.wal.maintenance.MaintenanceScheduler` (the crawler /
        listener auto-save hook).  ``None`` (the default) defers to the
        scheduler's own default interval; to disable interval-driven saves
        entirely, construct the scheduler with an explicit
        ``MaintenancePolicy(autosave_interval=None)``.
    wal_fsync_batch:
        Group-commit width for the change log: ``os.fsync`` once every N
        appends instead of never (``0``, the default) or every append
        (``ChangeLog(fsync=True)``).  A crash between batch syncs loses at
        most the unsynced suffix — the log can never decode with an
        interior gap.
    wal_superseded_retention:
        Seconds a sidelined ``*.seg.superseded`` journal is kept for
        operator salvage before maintenance garbage-collects it.  ``None``
        disables the GC entirely; the default keeps one week.
    replica_poll_interval:
        Seconds between WAL-tail polls of a follower replica
        (:class:`~repro.replication.Follower`).
    max_staleness_seconds:
        Staleness bound for replicated reads: a follower that has not
        caught up to the leader within this many seconds is excluded from
        read routing (the :class:`~repro.replication.ReplicaSet` falls back
        to fresher followers or the leader itself).
    reader_processes:
        Parallelism of the read path: the number of follower replicas /
        executor workers the replicated service front fans reads across.
    degraded_read_policy:
        What replicated reads do when *no* follower is eligible (all stale,
        erroring, or circuit-open).  ``"leader"`` (the default) falls back
        to the leader; ``"stale"`` serves the least-stale hydrated follower
        and tags the response with an ``X-CrypText-Degraded: stale``
        warning header; ``"fail_fast"`` refuses with a 503 so load
        balancers can shed traffic to another cell.
    request_deadline_seconds:
        Per-request time budget applied by the async front and propagated
        through handler dispatch (:class:`~repro.resilience.Deadline`).
        Requests that outlive it answer 504.  ``None`` (the default)
        disables deadlines.
    retry_attempts / retry_base_delay:
        Transient-IO retry policy (exponential backoff + full jitter) used
        by follower WAL tailing.  ``retry_attempts=1`` disables retries.
    breaker_failure_threshold / breaker_recovery_seconds:
        Per-replica circuit breaker: consecutive failures that trip the
        breaker open, and seconds it stays open before admitting half-open
        probe reads.
    replica_catchup_batch:
        Backpressure bound on follower catch-up: at most this many WAL
        records are decoded and applied per poll, so a follower that is
        many segments behind re-hydrates in bounded slices (yielding its
        lock and the disk between slices) instead of starving the leader.
    obs_enabled:
        Arms the process-global observability registry (``repro.obs.OBS``)
        when the system is constructed: latency histograms, request traces,
        and the slow-query log start recording.  Off by default — the
        disarmed hot-path cost is a single attribute read (the same
        contract as fault injection).  ``CRYPTEXT_OBS=1`` arms it from the
        environment via the CLI / test bootstrap.
    slow_query_ms:
        Threshold (milliseconds) above which a traced request is captured
        in the ring-buffer slow-query log with its per-stage timings.
    crawler_batch_size:
        Number of posts ingested per crawl round when enriching the
        dictionary from the (simulated) social stream.
    normalizer_max_candidates:
        Upper bound on the number of candidate English words ranked by the
        coherency scorer per token during Normalization.
    lm_order:
        Order of the n-gram language model that substitutes the paper's
        masked language model ``G``.
    seed:
        Seed used by every stochastic component (perturbation sampling,
        synthetic data generation) for reproducibility.
    """

    phonetic_level: int = DEFAULT_PHONETIC_LEVEL
    edit_distance: int = DEFAULT_EDIT_DISTANCE
    use_transpositions: bool = False
    max_phonetic_level: int = 2
    perturbation_ratio: float = 0.25
    case_sensitive: bool = True
    cache_enabled: bool = True
    cache_ttl_seconds: float = 300.0
    cache_max_entries: int = 4096
    compiled_buckets: bool = True
    match_kernel: str = "auto"
    snapshot_shards: int = 0
    snapshot_dir: str | None = None
    snapshot_on_save: bool = False
    wal_dir: str | None = None
    wal_segment_bytes: int = 1 << 20
    snapshot_autosave_interval: float | None = None
    wal_fsync_batch: int = 0
    wal_superseded_retention: float | None = 604800.0
    replica_poll_interval: float = 0.5
    max_staleness_seconds: float = 5.0
    reader_processes: int = 4
    degraded_read_policy: str = "leader"
    request_deadline_seconds: float | None = None
    retry_attempts: int = 3
    retry_base_delay: float = 0.05
    breaker_failure_threshold: int = 5
    breaker_recovery_seconds: float = 30.0
    replica_catchup_batch: int = 4096
    obs_enabled: bool = False
    slow_query_ms: float = 250.0
    crawler_batch_size: int = 200
    normalizer_max_candidates: int = 10
    lm_order: int = 3
    seed: int = 20230116
    extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.phonetic_level not in SUPPORTED_PHONETIC_LEVELS:
            raise ConfigurationError(
                f"phonetic_level must be one of {SUPPORTED_PHONETIC_LEVELS}, "
                f"got {self.phonetic_level!r}"
            )
        if self.max_phonetic_level not in SUPPORTED_PHONETIC_LEVELS:
            raise ConfigurationError(
                f"max_phonetic_level must be one of {SUPPORTED_PHONETIC_LEVELS}, "
                f"got {self.max_phonetic_level!r}"
            )
        if self.phonetic_level > self.max_phonetic_level:
            raise ConfigurationError(
                "phonetic_level cannot exceed max_phonetic_level "
                f"({self.phonetic_level} > {self.max_phonetic_level})"
            )
        if not isinstance(self.edit_distance, int) or self.edit_distance < 0:
            raise ConfigurationError(
                f"edit_distance must be a non-negative integer, got {self.edit_distance!r}"
            )
        if not 0.0 <= self.perturbation_ratio <= 1.0:
            raise ConfigurationError(
                f"perturbation_ratio must lie in [0, 1], got {self.perturbation_ratio!r}"
            )
        if self.cache_ttl_seconds <= 0:
            raise ConfigurationError(
                f"cache_ttl_seconds must be positive, got {self.cache_ttl_seconds!r}"
            )
        if self.cache_max_entries <= 0:
            raise ConfigurationError(
                f"cache_max_entries must be positive, got {self.cache_max_entries!r}"
            )
        if self.match_kernel not in MATCH_KERNEL_POLICIES:
            raise ConfigurationError(
                f"match_kernel must be one of {MATCH_KERNEL_POLICIES}, "
                f"got {self.match_kernel!r}"
            )
        if not isinstance(self.snapshot_shards, int) or isinstance(
            self.snapshot_shards, bool
        ) or self.snapshot_shards < 0:
            raise ConfigurationError(
                f"snapshot_shards must be a non-negative integer, "
                f"got {self.snapshot_shards!r}"
            )
        if self.wal_segment_bytes <= 0:
            raise ConfigurationError(
                f"wal_segment_bytes must be positive, got {self.wal_segment_bytes!r}"
            )
        if (
            self.snapshot_autosave_interval is not None
            and self.snapshot_autosave_interval <= 0
        ):
            raise ConfigurationError(
                "snapshot_autosave_interval must be positive (or None), "
                f"got {self.snapshot_autosave_interval!r}"
            )
        if not isinstance(self.wal_fsync_batch, int) or self.wal_fsync_batch < 0:
            raise ConfigurationError(
                f"wal_fsync_batch must be a non-negative integer, "
                f"got {self.wal_fsync_batch!r}"
            )
        if (
            self.wal_superseded_retention is not None
            and self.wal_superseded_retention < 0
        ):
            raise ConfigurationError(
                "wal_superseded_retention must be >= 0 (or None), "
                f"got {self.wal_superseded_retention!r}"
            )
        if self.replica_poll_interval <= 0:
            raise ConfigurationError(
                f"replica_poll_interval must be positive, "
                f"got {self.replica_poll_interval!r}"
            )
        if self.max_staleness_seconds <= 0:
            raise ConfigurationError(
                f"max_staleness_seconds must be positive, "
                f"got {self.max_staleness_seconds!r}"
            )
        if not isinstance(self.reader_processes, int) or self.reader_processes < 1:
            raise ConfigurationError(
                f"reader_processes must be a positive integer, "
                f"got {self.reader_processes!r}"
            )
        if self.degraded_read_policy not in DEGRADED_READ_POLICIES:
            raise ConfigurationError(
                f"degraded_read_policy must be one of {DEGRADED_READ_POLICIES}, "
                f"got {self.degraded_read_policy!r}"
            )
        if (
            self.request_deadline_seconds is not None
            and self.request_deadline_seconds <= 0
        ):
            raise ConfigurationError(
                "request_deadline_seconds must be positive (or None), "
                f"got {self.request_deadline_seconds!r}"
            )
        if not isinstance(self.retry_attempts, int) or self.retry_attempts < 1:
            raise ConfigurationError(
                f"retry_attempts must be an integer >= 1, got {self.retry_attempts!r}"
            )
        if self.retry_base_delay < 0:
            raise ConfigurationError(
                f"retry_base_delay must be >= 0, got {self.retry_base_delay!r}"
            )
        if (
            not isinstance(self.breaker_failure_threshold, int)
            or self.breaker_failure_threshold < 1
        ):
            raise ConfigurationError(
                "breaker_failure_threshold must be an integer >= 1, "
                f"got {self.breaker_failure_threshold!r}"
            )
        if self.breaker_recovery_seconds <= 0:
            raise ConfigurationError(
                "breaker_recovery_seconds must be positive, "
                f"got {self.breaker_recovery_seconds!r}"
            )
        if (
            not isinstance(self.replica_catchup_batch, int)
            or self.replica_catchup_batch < 1
        ):
            raise ConfigurationError(
                "replica_catchup_batch must be an integer >= 1, "
                f"got {self.replica_catchup_batch!r}"
            )
        if self.slow_query_ms <= 0:
            raise ConfigurationError(
                f"slow_query_ms must be positive, got {self.slow_query_ms!r}"
            )
        if self.crawler_batch_size <= 0:
            raise ConfigurationError(
                f"crawler_batch_size must be positive, got {self.crawler_batch_size!r}"
            )
        if self.normalizer_max_candidates <= 0:
            raise ConfigurationError(
                "normalizer_max_candidates must be positive, "
                f"got {self.normalizer_max_candidates!r}"
            )
        if self.lm_order < 1:
            raise ConfigurationError(f"lm_order must be >= 1, got {self.lm_order!r}")

    def with_overrides(self, **overrides: Any) -> "CrypTextConfig":
        """Return a copy of the configuration with ``overrides`` applied.

        The copy is re-validated, so an invalid override raises
        :class:`~repro.errors.ConfigurationError` immediately.
        """
        return replace(self, **overrides)

    def to_dict(self) -> dict[str, Any]:
        """Serialize the configuration to a plain dictionary."""
        return {
            "phonetic_level": self.phonetic_level,
            "edit_distance": self.edit_distance,
            "use_transpositions": self.use_transpositions,
            "max_phonetic_level": self.max_phonetic_level,
            "perturbation_ratio": self.perturbation_ratio,
            "case_sensitive": self.case_sensitive,
            "cache_enabled": self.cache_enabled,
            "cache_ttl_seconds": self.cache_ttl_seconds,
            "cache_max_entries": self.cache_max_entries,
            "compiled_buckets": self.compiled_buckets,
            "match_kernel": self.match_kernel,
            "snapshot_shards": self.snapshot_shards,
            "snapshot_dir": self.snapshot_dir,
            "snapshot_on_save": self.snapshot_on_save,
            "wal_dir": self.wal_dir,
            "wal_segment_bytes": self.wal_segment_bytes,
            "snapshot_autosave_interval": self.snapshot_autosave_interval,
            "wal_fsync_batch": self.wal_fsync_batch,
            "wal_superseded_retention": self.wal_superseded_retention,
            "replica_poll_interval": self.replica_poll_interval,
            "max_staleness_seconds": self.max_staleness_seconds,
            "reader_processes": self.reader_processes,
            "degraded_read_policy": self.degraded_read_policy,
            "request_deadline_seconds": self.request_deadline_seconds,
            "retry_attempts": self.retry_attempts,
            "retry_base_delay": self.retry_base_delay,
            "breaker_failure_threshold": self.breaker_failure_threshold,
            "breaker_recovery_seconds": self.breaker_recovery_seconds,
            "replica_catchup_batch": self.replica_catchup_batch,
            "obs_enabled": self.obs_enabled,
            "slow_query_ms": self.slow_query_ms,
            "crawler_batch_size": self.crawler_batch_size,
            "normalizer_max_candidates": self.normalizer_max_candidates,
            "lm_order": self.lm_order,
            "seed": self.seed,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CrypTextConfig":
        """Build a configuration from :meth:`to_dict` output.

        Unknown keys are collected under :attr:`extra` instead of raising, so
        configurations serialized by newer versions remain loadable.
        """
        known = {
            "phonetic_level",
            "edit_distance",
            "use_transpositions",
            "max_phonetic_level",
            "perturbation_ratio",
            "case_sensitive",
            "cache_enabled",
            "cache_ttl_seconds",
            "cache_max_entries",
            "compiled_buckets",
            "match_kernel",
            "snapshot_shards",
            "snapshot_dir",
            "snapshot_on_save",
            "wal_dir",
            "wal_segment_bytes",
            "snapshot_autosave_interval",
            "wal_fsync_batch",
            "wal_superseded_retention",
            "replica_poll_interval",
            "max_staleness_seconds",
            "reader_processes",
            "degraded_read_policy",
            "request_deadline_seconds",
            "retry_attempts",
            "retry_base_delay",
            "breaker_failure_threshold",
            "breaker_recovery_seconds",
            "replica_catchup_batch",
            "obs_enabled",
            "slow_query_ms",
            "crawler_batch_size",
            "normalizer_max_candidates",
            "lm_order",
            "seed",
        }
        kwargs: dict[str, Any] = {}
        extra: dict[str, Any] = {}
        for key, value in payload.items():
            if key == "extra":
                extra.update(dict(value))
            elif key in known:
                kwargs[key] = value
            else:
                extra[key] = value
        return cls(extra=extra, **kwargs)


#: A module-level default configuration mirroring the paper's defaults.
DEFAULT_CONFIG = CrypTextConfig()
