"""Sliding-window rate limiting for the service layer.

Because "some queries might take a longer time to process" (paper §III-F),
the deployed system protects itself with a cache and, as any public API
does, per-client request limits.  :class:`RateLimiter` implements a simple
sliding-window limit with an injectable clock so tests can control time.
"""

from __future__ import annotations

import time
from collections import defaultdict, deque
from typing import Callable, Deque

from ..errors import RateLimitExceededError


class RateLimiter:
    """Allows at most ``max_requests`` per ``window_seconds`` per key.

    Parameters
    ----------
    max_requests:
        Requests allowed inside one window.
    window_seconds:
        Window length.
    clock:
        Callable returning the current time in seconds (defaults to
        :func:`time.monotonic`).
    """

    def __init__(
        self,
        max_requests: int = 60,
        window_seconds: float = 60.0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if max_requests < 1:
            raise RateLimitExceededError(
                f"max_requests must be >= 1, got {max_requests}"
            )
        if window_seconds <= 0:
            raise RateLimitExceededError(
                f"window_seconds must be positive, got {window_seconds}"
            )
        self.max_requests = max_requests
        self.window_seconds = window_seconds
        self._clock = clock or time.monotonic
        self._events: dict[str, Deque[float]] = defaultdict(deque)

    def _prune(self, key: str, now: float) -> None:
        events = self._events[key]
        horizon = now - self.window_seconds
        while events and events[0] <= horizon:
            events.popleft()

    def check(self, key: str) -> None:
        """Record one request for ``key``; raise when over the limit."""
        now = self._clock()
        self._prune(key, now)
        events = self._events[key]
        if len(events) >= self.max_requests:
            raise RateLimitExceededError(
                f"client {key!r} exceeded {self.max_requests} requests "
                f"per {self.window_seconds:g}s"
            )
        events.append(now)

    def remaining(self, key: str) -> int:
        """Requests left in the current window for ``key``."""
        now = self._clock()
        self._prune(key, now)
        return max(self.max_requests - len(self._events[key]), 0)

    def reset(self, key: str | None = None) -> None:
        """Forget recorded requests (for one key, or all keys)."""
        if key is None:
            self._events.clear()
        else:
            self._events.pop(key, None)
