"""Asyncio service front: one event loop multiplexing many connections.

The sync :class:`~repro.api.service.CrypTextService` is the handler layer —
authentication, scopes, rate limits, validation, response caching — and
stays exactly as it is.  :class:`AsyncCrypTextService` puts an event loop in
front of it:

* every request is dispatched to the sync handler on a **thread pool**
  (``config.reader_processes`` workers), so one slow normalization never
  blocks the accept loop or the other connections;
* **read** endpoints (lookup / normalize and their batch variants) are
  routed across the follower replicas by the service's bound
  :class:`~repro.replication.ReplicaSet` — each request lands on one
  replica inside the staleness bound;
* **write and admin** endpoints (perturb sampling mutates RNG state,
  listen enriches, maintenance/snapshot administer) are pinned to the
  leader by the handlers themselves — the routing layer never sees them.

Two entry points:

* :meth:`dispatch` — the transport-free async callable
  (``await front.dispatch("POST", "/v1/lookup", token, payload)``), usable
  directly from any asyncio application;
* :meth:`start` — a minimal HTTP/1.1 server on ``asyncio.start_server``
  mapping the conventional routes (``POST /v1/lookup``,
  ``GET /v1/replication``, …) with ``Authorization: Bearer`` credentials
  and JSON bodies.  It exists so the CLI and the fault-injection harness
  can exercise the full socket path; it is deliberately not a general web
  server.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import json
from concurrent.futures import ThreadPoolExecutor

from ..errors import CrypTextError, DeadlineExceededError, InjectedFault
from ..obs.expose import CONTENT_TYPE as _METRICS_CONTENT_TYPE
from ..obs.registry import OBS
from ..obs.trace import current_trace
from ..resilience.faults import FAULTS
from ..resilience.policies import Deadline
from .service import CrypTextService, ServiceResponse

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Hard cap on accepted request bodies (a service front, not a file server).
MAX_BODY_BYTES = 8 << 20


class AsyncCrypTextService:
    """Event-loop front over a sync :class:`CrypTextService`.

    Parameters
    ----------
    service:
        The sync handler layer.
    reader_threads:
        Thread-pool width for handler dispatch; defaults to
        ``config.reader_processes``.
    max_body_bytes:
        Per-request body cap; defaults to :data:`MAX_BODY_BYTES`.
        Constructor-injectable so the protocol-edge tests can exercise the
        boundary without multi-megabyte requests.
    request_deadline:
        Per-request time budget in seconds; defaults to
        ``config.request_deadline_seconds``.  When set, every dispatched
        handler runs under an ambient :class:`Deadline` (propagated via a
        context variable into the worker thread) and the event loop stops
        waiting — answering 504 — the moment the budget is spent.
    """

    def __init__(
        self,
        service: CrypTextService,
        reader_threads: int | None = None,
        max_body_bytes: int | None = None,
        request_deadline: float | None = None,
    ) -> None:
        self.service = service
        workers = (
            reader_threads
            if reader_threads is not None
            else service.cryptext.config.reader_processes
        )
        if workers < 1:
            raise CrypTextError(f"reader_threads must be >= 1, got {workers!r}")
        self.max_body_bytes = (
            max_body_bytes if max_body_bytes is not None else MAX_BODY_BYTES
        )
        if self.max_body_bytes < 1:
            raise CrypTextError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes!r}"
            )
        self.request_deadline = (
            request_deadline
            if request_deadline is not None
            else service.cryptext.config.request_deadline_seconds
        )
        if self.request_deadline is not None and self.request_deadline <= 0:
            raise CrypTextError(
                f"request_deadline must be positive, got {self.request_deadline!r}"
            )
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="cryptext-read"
        )
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    async def _call(self, handler, /, *args, **kwargs) -> ServiceResponse:
        loop = asyncio.get_running_loop()
        seconds = self.request_deadline
        deadline = Deadline.after(seconds) if seconds is not None else None
        trace = current_trace()
        if deadline is None and trace is None:
            return await loop.run_in_executor(
                self._executor, functools.partial(handler, *args, **kwargs)
            )

        def invoke() -> ServiceResponse:
            # Runs on the worker thread: context variables do not cross the
            # executor boundary by themselves, so the ambient deadline (read
            # by the handler layer's check_deadline()) and the request trace
            # (fed by the handler layer's spans) are re-activated here.
            with contextlib.ExitStack() as scope:
                if trace is not None:
                    scope.enter_context(trace.activate())
                if deadline is not None:
                    scope.enter_context(deadline.activate())
                return handler(*args, **kwargs)

        future = loop.run_in_executor(self._executor, invoke)
        if deadline is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout=deadline.remaining())
        except asyncio.TimeoutError:
            # The worker thread cannot be cancelled, but the ambient
            # deadline lets it abort itself at its next check; the client
            # gets its answer now either way.
            return ServiceResponse(
                status=504,
                body={"error": f"request exceeded its {seconds:g}s deadline"},
            )
        except DeadlineExceededError as exc:
            return ServiceResponse(status=504, body={"error": str(exc)})

    async def dispatch(
        self,
        method: str,
        path: str,
        token: str | None,
        payload: dict | None = None,
    ) -> ServiceResponse:
        """Route one request to its sync handler on the thread pool."""
        if FAULTS.armed:
            # Async-aware fault point: delays yield the event loop instead
            # of blocking it, failures answer 500 like any dispatch crash.
            delay = FAULTS.consume_delay("front.dispatch")
            if delay > 0:
                await asyncio.sleep(delay)
            try:
                FAULTS.hit("front.dispatch", apply_delay=False)
            except InjectedFault as exc:
                return ServiceResponse(status=500, body={"error": str(exc)})
        body = payload if payload is not None else {}
        if not isinstance(body, dict):
            return ServiceResponse(
                status=400, body={"error": "request body must be a JSON object"}
            )
        if not OBS.armed:
            return await self._route(method, path, token, body)
        # One root trace per request, opened on the event loop and activated
        # for this task; _call() re-activates it inside the worker thread so
        # handler-layer spans land on it (the Deadline propagation pattern).
        trace = OBS.open_trace(path)
        with trace.activate():
            try:
                response = await self._route(method, path, token, body)
            except BaseException:
                OBS.finish_trace(trace, 500)
                raise
        OBS.finish_trace(trace, response.status)
        return response

    async def _route(
        self,
        method: str,
        path: str,
        token: str | None,
        body: dict,
    ) -> ServiceResponse:
        service = self.service
        route = (method.upper(), path)
        try:
            if route == ("POST", "/v1/lookup"):
                return await self._call(
                    service.lookup,
                    token,
                    body.get("queries", []),
                    phonetic_level=body.get("phonetic_level"),
                    max_edit_distance=body.get("max_edit_distance"),
                    case_sensitive=body.get("case_sensitive", True),
                    use_transpositions=body.get("use_transpositions"),
                )
            if route == ("POST", "/v1/normalize"):
                return await self._call(service.normalize, token, body.get("texts", []))
            if route == ("POST", "/v1/batch/lookup"):
                return await self._call(
                    service.batch_lookup,
                    token,
                    body.get("queries", []),
                    phonetic_level=body.get("phonetic_level"),
                    max_edit_distance=body.get("max_edit_distance"),
                    case_sensitive=body.get("case_sensitive", True),
                    use_transpositions=body.get("use_transpositions"),
                )
            if route == ("POST", "/v1/batch/normalize"):
                return await self._call(
                    service.batch_normalize, token, body.get("texts", [])
                )
            if route == ("POST", "/v1/perturb"):
                return await self._call(
                    service.perturb,
                    token,
                    body.get("texts", []),
                    ratio=body.get("ratio"),
                    case_sensitive=body.get("case_sensitive"),
                )
            if route == ("POST", "/v1/listen"):
                return await self._call(
                    service.listen,
                    token,
                    body.get("keywords", []),
                    since=body.get("since"),
                    until=body.get("until"),
                )
            if route == ("GET", "/v1/stats"):
                return await self._call(service.stats, token)
            if route == ("GET", "/v1/metrics"):
                return await self._call(service.metrics, token)
            if route == ("GET", "/v1/replication"):
                return await self._call(service.replication_status, token)
            if route == ("GET", "/v1/admin/maintenance"):
                return await self._call(service.maintenance_status, token)
            if route == ("POST", "/v1/admin/maintenance"):
                return await self._call(
                    service.maintenance_trigger, token, task=body.get("task", "save")
                )
            if route == ("POST", "/v1/admin/snapshot"):
                return await self._call(
                    service.snapshot_save,
                    token,
                    path=body.get("path"),
                    incremental=bool(body.get("incremental", False)),
                )
            if route == ("PUT", "/v1/admin/snapshot"):
                return await self._call(
                    service.snapshot_load, token, path=body.get("path")
                )
        except DeadlineExceededError as exc:
            return ServiceResponse(status=504, body={"error": str(exc)})
        except CrypTextError as exc:
            return ServiceResponse(status=400, body={"error": str(exc)})
        return ServiceResponse(
            status=404, body={"error": f"no route for {method.upper()} {path}"}
        )

    # ------------------------------------------------------------------ #
    # the socket server
    # ------------------------------------------------------------------ #
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: serve requests until close, EOF, or a hard error.

        HTTP/1.1 connections are persistent by default — the loop keeps
        reading requests until the client sends ``Connection: close``,
        disconnects, or commits a protocol error that poisons stream
        framing (at which point we answer what we can and close).  A
        handler crash answers 500 and closes; it never takes the front
        down.
        """
        try:
            while True:
                keep_alive = False
                try:
                    result = await self._read_one(reader)
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    asyncio.LimitOverrunError,
                ):
                    break
                except Exception as exc:  # noqa: BLE001 - the front must not die
                    result = (
                        ServiceResponse(status=500, body={"error": str(exc)}),
                        False,
                    )
                if result is None:
                    break  # clean EOF before a request line
                response, keep_alive = result
                if response.text is not None:
                    # A raw-text response (the Prometheus scrape) is served
                    # verbatim with the exposition content type.
                    data = response.text.encode("utf-8")
                    content_type = _METRICS_CONTENT_TYPE
                else:
                    data = json.dumps(response.body, ensure_ascii=False).encode("utf-8")
                    content_type = "application/json"
                reason = _REASONS.get(response.status, "Unknown")
                extra = "".join(
                    f"{name}: {value}\r\n" for name, value in response.headers.items()
                )
                connection = "keep-alive" if keep_alive else "close"
                head = (
                    f"HTTP/1.1 {response.status} {reason}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"{extra}"
                    f"Connection: {connection}\r\n\r\n"
                ).encode("latin-1")
                try:
                    writer.write(head + data)
                    await writer.drain()
                except ConnectionError:
                    break  # client went away mid-response; just this connection dies
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            # Shutdown cancels connections parked in a keep-alive read; a
            # cancelled connection just closes.  Returning normally keeps
            # the streams layer from logging the cancellation as a crash.
            pass
        finally:
            try:
                writer.close()
            except Exception:  # lint: allow=swallowed-exception (close failures on an already-dead connection are benign)  # pragma: no cover
                pass

    async def _read_one(
        self, reader: asyncio.StreamReader
    ) -> tuple[ServiceResponse, bool] | None:
        """Read and dispatch one request; returns ``(response, keep_alive)``.

        ``None`` means the client closed cleanly between requests.  A
        response paired with ``keep_alive=False`` either asked for close or
        hit a framing error we cannot safely read past (bad request line,
        unparseable/oversized Content-Length — the body was never
        consumed, so the stream position is unknowable).
        """
        first = await reader.readline()
        if first == b"":
            return None
        request_line = first.decode("latin-1").strip()
        if not request_line:
            return None
        parts = request_line.split()
        if len(parts) != 3:
            return (
                ServiceResponse(status=400, body={"error": "malformed request line"}),
                False,
            )
        method, target, version = parts
        path = target.split("?", 1)[0]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        requested = headers.get("connection", "").lower()
        if version.upper() == "HTTP/1.0":
            keep_alive = requested == "keep-alive"
        else:
            keep_alive = requested != "close"
        token: str | None = None
        authorization = headers.get("authorization", "")
        if authorization.lower().startswith("bearer "):
            token = authorization[len("bearer ") :].strip()
        try:
            length = int(headers.get("content-length", "0") or 0)
        except ValueError:
            return (
                ServiceResponse(status=400, body={"error": "bad Content-Length"}),
                False,
            )
        if length > self.max_body_bytes:
            return (
                ServiceResponse(status=400, body={"error": "request body too large"}),
                False,
            )
        payload: dict | None = None
        if length:
            raw = await reader.readexactly(length)
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                # The body was fully consumed so framing is intact, but a
                # client that sends garbage gets its connection closed —
                # plain HTTP clients expect error responses to end the
                # exchange, and it keeps misbehaving peers from parking.
                return (
                    ServiceResponse(
                        status=400, body={"error": "request body is not valid JSON"}
                    ),
                    False,
                )
        return await self.dispatch(method, path, token, payload), keep_alive

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and serve; returns the actual ``(host, port)`` bound."""
        if self._server is not None:
            raise CrypTextError("the async service front is already serving")
        self._server = await asyncio.start_server(self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        return str(sockname[0]), int(sockname[1])

    async def stop(self) -> None:
        """Stop accepting connections and release the thread pool."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        self._executor.shutdown(wait=False)

    async def serve_forever(self) -> None:
        """Block on the running server (call :meth:`start` first)."""
        if self._server is None:
            raise CrypTextError("call start() before serve_forever()")
        await self._server.serve_forever()
