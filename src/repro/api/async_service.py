"""Asyncio service front: one event loop multiplexing many connections.

The sync :class:`~repro.api.service.CrypTextService` is the handler layer —
authentication, scopes, rate limits, validation, response caching — and
stays exactly as it is.  :class:`AsyncCrypTextService` puts an event loop in
front of it:

* every request is dispatched to the sync handler on a **thread pool**
  (``config.reader_processes`` workers), so one slow normalization never
  blocks the accept loop or the other connections;
* **read** endpoints (lookup / normalize and their batch variants) are
  routed across the follower replicas by the service's bound
  :class:`~repro.replication.ReplicaSet` — each request lands on one
  replica inside the staleness bound;
* **write and admin** endpoints (perturb sampling mutates RNG state,
  listen enriches, maintenance/snapshot administer) are pinned to the
  leader by the handlers themselves — the routing layer never sees them.

Two entry points:

* :meth:`dispatch` — the transport-free async callable
  (``await front.dispatch("POST", "/v1/lookup", token, payload)``), usable
  directly from any asyncio application;
* :meth:`start` — a minimal HTTP/1.1 server on ``asyncio.start_server``
  mapping the conventional routes (``POST /v1/lookup``,
  ``GET /v1/replication``, …) with ``Authorization: Bearer`` credentials
  and JSON bodies.  It exists so the CLI and the fault-injection harness
  can exercise the full socket path; it is deliberately not a general web
  server.
"""

from __future__ import annotations

import asyncio
import functools
import json
from concurrent.futures import ThreadPoolExecutor

from ..errors import CrypTextError
from .service import CrypTextService, ServiceResponse

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Hard cap on accepted request bodies (a service front, not a file server).
MAX_BODY_BYTES = 8 << 20


class AsyncCrypTextService:
    """Event-loop front over a sync :class:`CrypTextService`."""

    def __init__(
        self,
        service: CrypTextService,
        reader_threads: int | None = None,
    ) -> None:
        self.service = service
        workers = (
            reader_threads
            if reader_threads is not None
            else service.cryptext.config.reader_processes
        )
        if workers < 1:
            raise CrypTextError(f"reader_threads must be >= 1, got {workers!r}")
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="cryptext-read"
        )
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    async def _call(self, handler, /, *args, **kwargs) -> ServiceResponse:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, functools.partial(handler, *args, **kwargs)
        )

    async def dispatch(
        self,
        method: str,
        path: str,
        token: str | None,
        payload: dict | None = None,
    ) -> ServiceResponse:
        """Route one request to its sync handler on the thread pool."""
        body = payload if payload is not None else {}
        if not isinstance(body, dict):
            return ServiceResponse(
                status=400, body={"error": "request body must be a JSON object"}
            )
        service = self.service
        route = (method.upper(), path)
        try:
            if route == ("POST", "/v1/lookup"):
                return await self._call(
                    service.lookup,
                    token,
                    body.get("queries", []),
                    phonetic_level=body.get("phonetic_level"),
                    max_edit_distance=body.get("max_edit_distance"),
                    case_sensitive=body.get("case_sensitive", True),
                    use_transpositions=body.get("use_transpositions"),
                )
            if route == ("POST", "/v1/normalize"):
                return await self._call(service.normalize, token, body.get("texts", []))
            if route == ("POST", "/v1/batch/lookup"):
                return await self._call(
                    service.batch_lookup,
                    token,
                    body.get("queries", []),
                    phonetic_level=body.get("phonetic_level"),
                    max_edit_distance=body.get("max_edit_distance"),
                    case_sensitive=body.get("case_sensitive", True),
                    use_transpositions=body.get("use_transpositions"),
                )
            if route == ("POST", "/v1/batch/normalize"):
                return await self._call(
                    service.batch_normalize, token, body.get("texts", [])
                )
            if route == ("POST", "/v1/perturb"):
                return await self._call(
                    service.perturb,
                    token,
                    body.get("texts", []),
                    ratio=body.get("ratio"),
                    case_sensitive=body.get("case_sensitive"),
                )
            if route == ("POST", "/v1/listen"):
                return await self._call(
                    service.listen,
                    token,
                    body.get("keywords", []),
                    since=body.get("since"),
                    until=body.get("until"),
                )
            if route == ("GET", "/v1/stats"):
                return await self._call(service.stats, token)
            if route == ("GET", "/v1/replication"):
                return await self._call(service.replication_status, token)
            if route == ("GET", "/v1/admin/maintenance"):
                return await self._call(service.maintenance_status, token)
            if route == ("POST", "/v1/admin/maintenance"):
                return await self._call(
                    service.maintenance_trigger, token, task=body.get("task", "save")
                )
            if route == ("POST", "/v1/admin/snapshot"):
                return await self._call(
                    service.snapshot_save,
                    token,
                    path=body.get("path"),
                    incremental=bool(body.get("incremental", False)),
                )
            if route == ("PUT", "/v1/admin/snapshot"):
                return await self._call(
                    service.snapshot_load, token, path=body.get("path")
                )
        except CrypTextError as exc:
            return ServiceResponse(status=400, body={"error": str(exc)})
        return ServiceResponse(
            status=404, body={"error": f"no route for {method.upper()} {path}"}
        )

    # ------------------------------------------------------------------ #
    # the socket server
    # ------------------------------------------------------------------ #
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            response = await self._read_and_dispatch(reader)
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.LimitOverrunError):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - the front must not die
            response = ServiceResponse(status=500, body={"error": str(exc)})
        data = json.dumps(response.body, ensure_ascii=False).encode("utf-8")
        reason = _REASONS.get(response.status, "Unknown")
        head = (
            f"HTTP/1.1 {response.status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head + data)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _read_and_dispatch(self, reader: asyncio.StreamReader) -> ServiceResponse:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            return ServiceResponse(status=400, body={"error": "malformed request line"})
        method, target, _version = parts
        path = target.split("?", 1)[0]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        token: str | None = None
        authorization = headers.get("authorization", "")
        if authorization.lower().startswith("bearer "):
            token = authorization[len("bearer ") :].strip()
        try:
            length = int(headers.get("content-length", "0") or 0)
        except ValueError:
            return ServiceResponse(status=400, body={"error": "bad Content-Length"})
        if length > MAX_BODY_BYTES:
            return ServiceResponse(status=400, body={"error": "request body too large"})
        payload: dict | None = None
        if length:
            raw = await reader.readexactly(length)
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                return ServiceResponse(
                    status=400, body={"error": "request body is not valid JSON"}
                )
        return await self.dispatch(method, path, token, payload)

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and serve; returns the actual ``(host, port)`` bound."""
        if self._server is not None:
            raise CrypTextError("the async service front is already serving")
        self._server = await asyncio.start_server(self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        return str(sockname[0]), int(sockname[1])

    async def stop(self) -> None:
        """Stop accepting connections and release the thread pool."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        self._executor.shutdown(wait=False)

    async def serve_forever(self) -> None:
        """Block on the running server (call :meth:`start` first)."""
        if self._server is None:
            raise CrypTextError("call start() before serve_forever()")
        await self._server.serve_forever()
