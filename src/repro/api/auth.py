"""Token authentication for the service layer.

The paper notes that CrypText's public APIs "require an authorization token
that will be provided upon request".  :class:`TokenAuthenticator` plays the
role of that token registry: it issues opaque tokens bound to a client name
and a set of scopes, validates incoming tokens, and supports revocation.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass, field

from ..errors import AuthenticationError, AuthorizationError

#: Scopes understood by the service layer.
KNOWN_SCOPES: frozenset[str] = frozenset(
    {"lookup", "normalize", "perturb", "listen", "stats", "admin"}
)


@dataclass(frozen=True)
class ApiToken:
    """An issued API token (returned once, at issue time)."""

    token: str
    client: str
    scopes: frozenset[str] = field(default_factory=frozenset)

    def to_dict(self) -> dict[str, object]:
        """Serialize (e.g. to hand to a client)."""
        return {"token": self.token, "client": self.client, "scopes": sorted(self.scopes)}


class TokenAuthenticator:
    """Issues, validates, and revokes API tokens.

    Tokens are stored only as salted SHA-256 digests, so a dump of the
    authenticator's state does not leak usable credentials.

    Parameters
    ----------
    secret:
        HMAC key used to derive token digests; a random one is generated when
        omitted (tests pass a fixed secret for determinism).
    """

    def __init__(self, secret: str | None = None) -> None:
        self._secret = (secret or secrets.token_hex(16)).encode("utf-8")
        self._tokens: dict[str, dict[str, object]] = {}

    # ------------------------------------------------------------------ #
    def _digest(self, token: str) -> str:
        return hmac.new(self._secret, token.encode("utf-8"), hashlib.sha256).hexdigest()

    def issue(self, client: str, scopes: frozenset[str] | set[str] | None = None) -> ApiToken:
        """Issue a new token for ``client`` limited to ``scopes``.

        ``None`` grants every non-admin scope, mirroring the default access a
        registered CrypText user receives.
        """
        if not client or not client.strip():
            raise AuthenticationError("client name must not be empty")
        granted = frozenset(scopes) if scopes is not None else KNOWN_SCOPES - {"admin"}
        unknown = granted - KNOWN_SCOPES
        if unknown:
            raise AuthorizationError(f"unknown scopes requested: {sorted(unknown)}")
        token_value = secrets.token_urlsafe(24)
        self._tokens[self._digest(token_value)] = {
            "client": client,
            "scopes": granted,
            "revoked": False,
        }
        return ApiToken(token=token_value, client=client, scopes=granted)

    def revoke(self, token: str) -> bool:
        """Revoke a token; returns whether it existed."""
        record = self._tokens.get(self._digest(token))
        if record is None:
            return False
        record["revoked"] = True
        return True

    # ------------------------------------------------------------------ #
    def authenticate(self, token: str | None) -> dict[str, object]:
        """Validate ``token`` and return its record.

        Raises
        ------
        AuthenticationError
            If the token is missing, unknown, or revoked.
        """
        if not token:
            raise AuthenticationError("missing API token")
        record = self._tokens.get(self._digest(token))
        if record is None:
            raise AuthenticationError("unknown API token")
        if record["revoked"]:
            raise AuthenticationError("revoked API token")
        return {"client": record["client"], "scopes": record["scopes"]}

    def authorize(self, token: str | None, scope: str) -> str:
        """Authenticate and check the token carries ``scope``; returns the client.

        Raises
        ------
        AuthorizationError
            If the token is valid but lacks the scope.
        """
        record = self.authenticate(token)
        scopes: frozenset[str] = record["scopes"]  # type: ignore[assignment]
        if scope not in scopes and "admin" not in scopes:
            raise AuthorizationError(
                f"token of client {record['client']!r} lacks scope {scope!r}"
            )
        return str(record["client"])

    def known_clients(self) -> tuple[str, ...]:
        """Names of clients with at least one issued token."""
        return tuple(sorted({str(record["client"]) for record in self._tokens.values()}))
