"""Service layer: token-authorized bulk APIs.

The deployed CrypText exposes its functions "via ... several function APIs
... equipped with secured public APIs, allowing users to utilize Look Up,
Normalization and Perturbation in bulks.  Accessing such APIs requires an
authorization token" (paper §III-F).  This subpackage reproduces the service
layer in process:

* :class:`repro.api.TokenAuthenticator` — issues and validates API tokens
  with per-token scopes;
* :class:`repro.api.RateLimiter` — sliding-window request limits per token;
* :class:`repro.api.CrypTextService` — the endpoints (``lookup``,
  ``normalize``, ``perturb``, ``listen``, ``stats``), accepting and returning
  plain dictionaries exactly as a JSON HTTP layer would, with responses
  cached in the Redis-style cache.
"""

from .async_service import AsyncCrypTextService
from .auth import ApiToken, TokenAuthenticator
from .ratelimit import RateLimiter
from .service import CrypTextService, ServiceResponse

__all__ = [
    "ApiToken",
    "TokenAuthenticator",
    "RateLimiter",
    "AsyncCrypTextService",
    "CrypTextService",
    "ServiceResponse",
]
