"""In-process service layer: the bulk Look Up / Normalize / Perturb endpoints.

:class:`CrypTextService` is the library equivalent of the Django/FastAPI
back end in Figure 5: every endpoint takes and returns plain dictionaries
(what a JSON HTTP layer would serialize), enforces token authentication and
per-client rate limits, and caches responses in the Redis-style cache.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

from ..core.pipeline import CrypText
from ..obs.adapters import service_samples
from ..obs.expose import render_text
from ..obs.registry import OBS
from ..errors import (
    AuthenticationError,
    AuthorizationError,
    CrypTextError,
    DeadlineExceededError,
    RateLimitExceededError,
    ReplicasUnavailableError,
    ServiceError,
)
from ..resilience.policies import check_deadline
from ..social.listening import SocialListener
from ..social.platform import SocialPlatform
from ..storage import TTLCache, make_key
from .auth import ApiToken, TokenAuthenticator
from .ratelimit import RateLimiter

T = TypeVar("T")


@dataclass(frozen=True)
class ServiceResponse:
    """Envelope every endpoint returns.

    ``headers`` carries response-level metadata an HTTP front should emit
    verbatim — today the degradation warning (``X-CrypText-Degraded:
    stale``) attached when the stale read policy served an out-of-bound
    replica.  Empty for ordinary responses.
    """

    status: int
    body: dict[str, object]
    headers: dict[str, str] = field(default_factory=dict)
    #: When set, an HTTP front serves this raw text (with the exposition
    #: content type) instead of JSON-encoding ``body`` — the Prometheus
    #: scrape path.  ``body`` still carries a JSON view for sync callers.
    text: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the request succeeded."""
        return 200 <= self.status < 300

    def to_dict(self) -> dict[str, object]:
        """Serialize the full envelope."""
        payload: dict[str, object] = {"status": self.status, "body": dict(self.body)}
        if self.headers:
            payload["headers"] = dict(self.headers)
        return payload


@dataclass(frozen=True)
class CompiledCacheStats:
    """Structured view of the compiled-bucket LRU counters.

    What ``/v1/stats`` dashboards consume instead of the raw dictionary:
    explicit hit/miss/eviction/invalidation fields plus a derived hit rate,
    with the trie-family sharing counters kept as a nested block.
    """

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    capacity: int
    families: dict[str, object]

    @classmethod
    def from_raw(cls, raw: dict[str, object]) -> "CompiledCacheStats":
        """Build from :meth:`PerturbationDictionary.compiled_cache_stats` output."""
        return cls(
            hits=int(raw.get("hits", 0)),  # type: ignore[arg-type]
            misses=int(raw.get("misses", 0)),  # type: ignore[arg-type]
            evictions=int(raw.get("evictions", 0)),  # type: ignore[arg-type]
            invalidations=int(raw.get("invalidations", 0)),  # type: ignore[arg-type]
            size=int(raw.get("size", 0)),  # type: ignore[arg-type]
            capacity=int(raw.get("capacity", 0)),  # type: ignore[arg-type]
            families=dict(raw.get("families", {})),  # type: ignore[arg-type]
        )

    @property
    def hit_rate(self) -> float:
        """Hits over total probes (0.0 when the cache was never probed)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict[str, object]:
        """Serialize for the stats endpoint."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
            "size": self.size,
            "capacity": self.capacity,
            "families": dict(self.families),
        }


def _traced(route: str):
    """Trace an endpoint method under ``OBS.request(route)`` when armed.

    Disarmed requests pay one attribute read.  When the asyncio front
    already opened a trace for this request, ``OBS.request`` yields that
    trace instead of opening a second root, so each request is counted
    exactly once no matter how many fronts it crossed.
    """

    def wrap(method):
        @functools.wraps(method)
        def inner(self, *args, **kwargs):
            if not OBS.armed:
                return method(self, *args, **kwargs)
            with OBS.request(route) as trace:
                response = method(self, *args, **kwargs)
                trace.status = response.status
                return response

        return inner

    return wrap


class CrypTextService:
    """Token-authorized facade over a :class:`~repro.core.pipeline.CrypText`.

    Parameters
    ----------
    cryptext:
        The system instance to expose.
    authenticator:
        Token registry (a private one is created when omitted; use
        :meth:`issue_token` to mint credentials).
    rate_limiter:
        Per-client limiter (default 120 requests / 60 s).
    platform:
        Optional platform bound to the ``listen`` endpoint.
    cache:
        Response cache; defaults to the CrypText instance's cache.
    max_batch_size:
        Upper bound on the classic bulk request sizes.
    max_bulk_batch_size:
        Upper bound on the high-throughput ``/v1/batch/*`` request sizes
        (served by the batch engine, so the limit can be much higher).
    replica_set:
        Optional :class:`~repro.replication.ReplicaSet`; when bound, read
        endpoints (lookup / normalize and their batch variants) are routed
        across the follower replicas inside the staleness bound instead of
        always hitting the leader.  Write and admin endpoints stay pinned
        to the leader regardless.
    """

    def __init__(
        self,
        cryptext: CrypText,
        authenticator: TokenAuthenticator | None = None,
        rate_limiter: RateLimiter | None = None,
        platform: SocialPlatform | None = None,
        cache: TTLCache | None = None,
        max_batch_size: int = 256,
        max_bulk_batch_size: int = 4096,
        scheduler=None,
        replica_set=None,
    ) -> None:
        if max_batch_size < 1:
            raise ServiceError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_bulk_batch_size < max_batch_size:
            raise ServiceError(
                "max_bulk_batch_size must be >= max_batch_size "
                f"({max_bulk_batch_size} < {max_batch_size})"
            )
        self.cryptext = cryptext
        self.authenticator = authenticator if authenticator is not None else TokenAuthenticator()
        self.rate_limiter = rate_limiter if rate_limiter is not None else RateLimiter(
            max_requests=120, window_seconds=60.0
        )
        self.platform = platform
        self.cache = cache if cache is not None else cryptext.cache
        self.max_batch_size = max_batch_size
        self.max_bulk_batch_size = max_bulk_batch_size
        #: Optional maintenance scheduler behind ``/v1/admin/maintenance``
        #: and the ``maintenance`` section of ``/v1/stats``.
        self.scheduler = scheduler
        #: Optional replica set routing the read endpoints.
        self.replica_set = replica_set
        self._listener: SocialListener | None = None

    # ------------------------------------------------------------------ #
    # administration
    # ------------------------------------------------------------------ #
    def issue_token(
        self, client: str, scopes: frozenset[str] | set[str] | None = None
    ) -> ApiToken:
        """Mint an API token (the paper's "provided upon request")."""
        return self.authenticator.issue(client, scopes)

    def bind_platform(self, platform: SocialPlatform) -> None:
        """Attach (or replace) the platform used by the ``listen`` endpoint."""
        self.platform = platform
        self._listener = None

    def _listener_or_error(self) -> SocialListener:
        if self.platform is None:
            raise ServiceError("no platform is bound; call bind_platform() first")
        if self._listener is None:
            self._listener = self.cryptext.social_listener(self.platform)
        return self._listener

    # ------------------------------------------------------------------ #
    # request plumbing
    # ------------------------------------------------------------------ #
    def _guard(self, token: str | None, scope: str) -> ServiceResponse | str:
        """Authenticate, authorize and rate-limit; returns client or an error response."""
        try:
            check_deadline("request")
        except DeadlineExceededError as exc:
            return ServiceResponse(status=504, body={"error": str(exc)})
        try:
            client = self.authenticator.authorize(token, scope)
        except AuthenticationError as exc:
            return ServiceResponse(status=401, body={"error": str(exc)})
        except AuthorizationError as exc:
            return ServiceResponse(status=403, body={"error": str(exc)})
        try:
            self.rate_limiter.check(client)
        except RateLimitExceededError as exc:
            return ServiceResponse(status=429, body={"error": str(exc)})
        return client

    @staticmethod
    def _validate_batch(items: Sequence[str], maximum: int, what: str) -> None:
        if not items:
            raise ServiceError(f"{what} must not be empty")
        if len(items) > maximum:
            raise ServiceError(
                f"{what} exceeds the maximum batch size of {maximum} "
                f"(got {len(items)})"
            )
        if any(not isinstance(item, str) for item in items):
            raise ServiceError(f"every element of {what} must be a string")

    def _cached(self, key: tuple, compute):
        if self.cache is None:
            return compute()
        return self.cache.get_or_compute(key, compute)

    def _read_system(self) -> CrypText:
        """The system serving this read: a routed replica, or the leader."""
        if self.replica_set is not None:
            return self.replica_set.route()
        return self.cryptext

    def _replicated(self, compute: Callable[[CrypText], T]) -> tuple[T, dict[str, str]]:
        """Run one read through the replica set (breaker accounting, leader
        failover, degradation policy) and return ``(value, headers)``.

        Raises :class:`ReplicasUnavailableError` (fail-fast policy) or
        :class:`DeadlineExceededError`; endpoints map them via
        :meth:`_degraded_error`.
        """
        if self.replica_set is None:
            check_deadline("read")
            return compute(self.cryptext), {}
        outcome = self.replica_set.execute(compute)
        headers = (
            {"X-CrypText-Degraded": "stale"} if outcome.degraded == "stale" else {}
        )
        return outcome.result, headers  # type: ignore[return-value]

    @staticmethod
    def _degraded_error(exc: CrypTextError) -> ServiceResponse:
        """503 for no-healthy-replica fail-fast, 504 for a blown deadline."""
        status = 503 if isinstance(exc, ReplicasUnavailableError) else 504
        return ServiceResponse(status=status, body={"error": str(exc)})

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    @_traced("/v1/lookup")
    def lookup(
        self,
        token: str | None,
        queries: Sequence[str],
        phonetic_level: int | None = None,
        max_edit_distance: int | None = None,
        case_sensitive: bool = True,
        use_transpositions: bool | None = None,
    ) -> ServiceResponse:
        """Bulk Look Up endpoint — the ``/v1/lookup`` route.

        ``use_transpositions`` is the request-level distance-policy
        override: ``true`` scores adjacent swaps as one edit for this
        request only, ``false`` forces plain Levenshtein, omitted/``null``
        keeps the server's configured policy.  It participates in the
        response cache key, so differently-policied requests never share a
        cached response.
        """
        guard = self._guard(token, "lookup")
        if isinstance(guard, ServiceResponse):
            return guard
        try:
            self._validate_batch(queries, self.max_batch_size, "queries")
        except ServiceError as exc:
            return ServiceResponse(status=400, body={"error": str(exc)})
        key = make_key(
            "service.lookup", list(queries), phonetic_level, max_edit_distance,
            case_sensitive, use_transpositions,
        )
        try:
            results, headers = self._replicated(
                lambda system: self._cached(
                    key,
                    lambda: {
                        query: system.look_up(
                            query,
                            phonetic_level=phonetic_level,
                            max_edit_distance=max_edit_distance,
                            case_sensitive=case_sensitive,
                            use_transpositions=use_transpositions,
                        ).to_dict()
                        for query in queries
                    },
                )
            )
        except (ReplicasUnavailableError, DeadlineExceededError) as exc:
            return self._degraded_error(exc)
        return ServiceResponse(status=200, body={"results": results}, headers=headers)

    @_traced("/v1/normalize")
    def normalize(self, token: str | None, texts: Sequence[str]) -> ServiceResponse:
        """Bulk Normalization endpoint."""
        guard = self._guard(token, "normalize")
        if isinstance(guard, ServiceResponse):
            return guard
        try:
            self._validate_batch(texts, self.max_batch_size, "texts")
        except ServiceError as exc:
            return ServiceResponse(status=400, body={"error": str(exc)})
        key = make_key("service.normalize", list(texts))
        try:
            results, headers = self._replicated(
                lambda system: self._cached(
                    key,
                    lambda: [system.normalize(text).to_dict() for text in texts],
                )
            )
        except (ReplicasUnavailableError, DeadlineExceededError) as exc:
            return self._degraded_error(exc)
        return ServiceResponse(status=200, body={"results": results}, headers=headers)

    @_traced("/v1/perturb")
    def perturb(
        self,
        token: str | None,
        texts: Sequence[str],
        ratio: float | None = None,
        case_sensitive: bool | None = None,
    ) -> ServiceResponse:
        """Bulk Perturbation endpoint (not cached: sampling is stochastic)."""
        guard = self._guard(token, "perturb")
        if isinstance(guard, ServiceResponse):
            return guard
        try:
            self._validate_batch(texts, self.max_batch_size, "texts")
            if ratio is not None and not 0.0 <= ratio <= 1.0:
                raise ServiceError(f"ratio must lie in [0, 1], got {ratio}")
        except ServiceError as exc:
            return ServiceResponse(status=400, body={"error": str(exc)})
        results = [
            self.cryptext.perturb(text, ratio=ratio, case_sensitive=case_sensitive).to_dict()
            for text in texts
        ]
        return ServiceResponse(status=200, body={"results": results})

    @_traced("/v1/batch/lookup")
    def batch_lookup(
        self,
        token: str | None,
        queries: Sequence[str],
        phonetic_level: int | None = None,
        max_edit_distance: int | None = None,
        case_sensitive: bool = True,
        use_transpositions: bool | None = None,
    ) -> ServiceResponse:
        """High-throughput batch Look Up — the ``/v1/batch/lookup`` route.

        Unlike :meth:`lookup`, the response is an order-preserving list (one
        entry per query, duplicates included) and the work is served by the
        batch engine: queries are deduplicated, sound buckets are retrieved
        shard-parallel, and the shared query cache is populated per query —
        so no whole-response cache entry goes stale on enrichment.
        """
        guard = self._guard(token, "lookup")
        if isinstance(guard, ServiceResponse):
            return guard
        try:
            self._validate_batch(queries, self.max_bulk_batch_size, "queries")
        except ServiceError as exc:
            return ServiceResponse(status=400, body={"error": str(exc)})
        try:
            results, headers = self._replicated(
                lambda system: system.look_up_batch(
                    queries,
                    phonetic_level=phonetic_level,
                    max_edit_distance=max_edit_distance,
                    case_sensitive=case_sensitive,
                    use_transpositions=use_transpositions,
                )
            )
        except (ReplicasUnavailableError, DeadlineExceededError) as exc:
            return self._degraded_error(exc)
        return ServiceResponse(
            status=200,
            body={
                "count": len(results),
                "results": [result.to_dict() for result in results],
            },
            headers=headers,
        )

    @_traced("/v1/batch/normalize")
    def batch_normalize(self, token: str | None, texts: Sequence[str]) -> ServiceResponse:
        """High-throughput batch Normalization — the ``/v1/batch/normalize`` route.

        Order-preserving list response served by the batch engine (duplicate
        documents normalized once, per-token candidate retrieval memoized).
        """
        guard = self._guard(token, "normalize")
        if isinstance(guard, ServiceResponse):
            return guard
        try:
            self._validate_batch(texts, self.max_bulk_batch_size, "texts")
        except ServiceError as exc:
            return ServiceResponse(status=400, body={"error": str(exc)})
        try:
            results, headers = self._replicated(
                lambda system: system.normalize_batch(texts)
            )
        except (ReplicasUnavailableError, DeadlineExceededError) as exc:
            return self._degraded_error(exc)
        return ServiceResponse(
            status=200,
            body={
                "count": len(results),
                "results": [result.to_dict() for result in results],
            },
            headers=headers,
        )

    @_traced("/v1/listen")
    def listen(
        self,
        token: str | None,
        keywords: Sequence[str],
        since: str | None = None,
        until: str | None = None,
    ) -> ServiceResponse:
        """Social Listening endpoint."""
        guard = self._guard(token, "listen")
        if isinstance(guard, ServiceResponse):
            return guard
        try:
            self._validate_batch(keywords, self.max_batch_size, "keywords")
            listener = self._listener_or_error()
        except ServiceError as exc:
            return ServiceResponse(status=400, body={"error": str(exc)})
        usage = listener.monitor_keywords(keywords, since=since, until=until)
        return ServiceResponse(
            status=200,
            body={"results": {keyword: report.to_dict() for keyword, report in usage.items()}},
        )

    @_traced("/v1/stats")
    def stats(self, token: str | None) -> ServiceResponse:
        """Dictionary statistics endpoint — the ``/v1/stats`` route.

        Beyond the raw dictionary aggregates (``stats``), the body carries
        structured operational sections: ``compiled_cache`` (the
        trie-cache LRU counters with a derived hit rate —
        :class:`CompiledCacheStats`), ``recovery`` (the last crash-recovery
        outcome, when the dictionary was reconstructed via
        :meth:`~repro.core.dictionary.PerturbationDictionary.recover`), and
        ``maintenance`` (the scheduler's counters/due times, when one is
        bound).
        """
        guard = self._guard(token, "stats")
        if isinstance(guard, ServiceResponse):
            return guard
        dictionary = self.cryptext.dictionary
        recovery = dictionary.last_recovery
        body: dict[str, object] = {
            "stats": self.cryptext.stats().to_dict(),
            "compiled_cache": CompiledCacheStats.from_raw(
                dictionary.compiled_cache_stats()
            ).to_dict(),
            "recovery": recovery.to_dict() if recovery is not None else None,
            "maintenance": (
                self.scheduler.status() if self.scheduler is not None else None
            ),
            "observability": OBS.status(),
        }
        return ServiceResponse(status=200, body=body)

    def metrics(self, token: str | None) -> ServiceResponse:
        """Prometheus exposition endpoint — the ``/v1/metrics`` route.

        Requires the ``stats`` scope.  The response's :attr:`ServiceResponse.text`
        carries the exposition document (``text/plain; version=0.0.4``):
        the registry's request/stage histograms and counters plus the
        adapter-lifted gauges for this service's system, scheduler, and
        replica set.  ``body`` carries the registry summary for JSON
        callers; one scrape sees the whole system either way.
        """
        guard = self._guard(token, "stats")
        if isinstance(guard, ServiceResponse):
            return guard
        samples = OBS.collect(service_samples(self))
        return ServiceResponse(
            status=200,
            body={"observability": OBS.status()},
            text=render_text(samples),
        )

    # ------------------------------------------------------------------ #
    # replication
    # ------------------------------------------------------------------ #
    def bind_replica_set(self, replica_set) -> None:
        """Attach (or replace) the replica set routing the read endpoints."""
        self.replica_set = replica_set

    def replication_status(self, token: str | None) -> ServiceResponse:
        """Replication topology and lag — the ``/v1/replication`` route.

        Requires the ``stats`` scope.  409 when the service runs
        unreplicated (no replica set bound).
        """
        guard = self._guard(token, "stats")
        if isinstance(guard, ServiceResponse):
            return guard
        if self.replica_set is None:
            return ServiceResponse(
                status=409, body={"error": "no replica set is bound"}
            )
        return ServiceResponse(
            status=200, body={"replication": self.replica_set.status()}
        )

    # ------------------------------------------------------------------ #
    # durability administration
    # ------------------------------------------------------------------ #
    def bind_scheduler(self, scheduler) -> None:
        """Attach (or replace) the maintenance scheduler behind the admin API."""
        self.scheduler = scheduler

    def maintenance_status(self, token: str | None) -> ServiceResponse:
        """Maintenance status — the ``/v1/admin/maintenance`` GET route.

        Requires the ``admin`` scope.  409 when no scheduler is bound.
        """
        guard = self._guard(token, "admin")
        if isinstance(guard, ServiceResponse):
            return guard
        if self.scheduler is None:
            return ServiceResponse(
                status=409, body={"error": "no maintenance scheduler is bound"}
            )
        return ServiceResponse(status=200, body={"maintenance": self.scheduler.status()})

    def maintenance_trigger(
        self, token: str | None, task: str = "save"
    ) -> ServiceResponse:
        """Run one maintenance task now — the ``/v1/admin/maintenance`` POST route.

        Requires the ``admin`` scope.  ``task`` is ``save`` (respects the
        incremental policy), ``full_save``, ``compact``, or
        ``truncate_wal``.
        """
        guard = self._guard(token, "admin")
        if isinstance(guard, ServiceResponse):
            return guard
        if self.scheduler is None:
            return ServiceResponse(
                status=409, body={"error": "no maintenance scheduler is bound"}
            )
        try:
            outcome = self.scheduler.run_now(task)
        except CrypTextError as exc:
            return ServiceResponse(status=400, body={"error": str(exc)})
        return ServiceResponse(status=200, body={"maintenance": outcome})

    def snapshot_save(
        self,
        token: str | None,
        path: str | None = None,
        incremental: bool = False,
    ) -> ServiceResponse:
        """Warm-start snapshot save — the ``/v1/admin/snapshot`` POST route.

        Requires the ``admin`` scope.  Persists the dictionary plus its
        compiled tries to ``path`` (or the configured
        ``config.snapshot_dir``) so the next deploy/restart hydrates instead
        of recompiling.  ``incremental`` writes a delta covering only the
        buckets changed since the last save (:mod:`repro.wal.delta`).
        """
        guard = self._guard(token, "admin")
        if isinstance(guard, ServiceResponse):
            return guard
        try:
            report = self.cryptext.save_snapshot(path, incremental=incremental)
        except CrypTextError as exc:
            return ServiceResponse(status=400, body={"error": str(exc)})
        return ServiceResponse(status=200, body={"snapshot": report.to_dict()})

    def snapshot_load(self, token: str | None, path: str | None = None) -> ServiceResponse:
        """Warm-start snapshot load — the ``/v1/admin/snapshot`` PUT route.

        Requires the ``admin`` scope.  Replaces the live dictionary and
        warms every cache layer from the snapshot; a corrupt or
        incompatible snapshot leaves the service untouched and reports why
        (status 409, ``loaded: false``) rather than failing the process.
        """
        guard = self._guard(token, "admin")
        if isinstance(guard, ServiceResponse):
            return guard
        try:
            report = self.cryptext.load_snapshot(path)
        except CrypTextError as exc:
            return ServiceResponse(status=400, body={"error": str(exc)})
        status = 200 if report.loaded else 409
        return ServiceResponse(status=status, body={"snapshot": report.to_dict()})
