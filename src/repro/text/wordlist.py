"""Bundled English lexicon.

CrypText's database pairs "correctly-spelled English words" with their
observed perturbations (paper §III-A), and the Normalization function maps
out-of-vocabulary tokens back onto English words.  The original system relies
on a large external dictionary; this reproduction bundles a self-contained
lexicon so the library works fully offline.

The lexicon is organized in thematic groups.  Besides a core of very common
English words, it deliberately covers the vocabulary the paper's scenarios
revolve around: politics ("democrats", "republicans"), public health
("vaccine", "mandate"), abuse/toxicity, religion and nationality terms that
appear in cyberbullying contexts, and social-platform vocabulary.  The
groups also drive the synthetic corpus builders in :mod:`repro.datasets`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Iterator, Mapping

#: Function words and glue vocabulary (never perturbed as "interesting"
#: targets, but needed by the tokenizer/LM and the Table I example).
FUNCTION_WORDS: tuple[str, ...] = (
    "the", "a", "an", "and", "or", "but", "if", "then", "else", "when",
    "while", "because", "so", "though", "although", "however", "therefore",
    "of", "in", "on", "at", "by", "for", "with", "about", "against",
    "between", "into", "through", "during", "before", "after", "above",
    "below", "to", "from", "up", "down", "out", "off", "over", "under",
    "again", "further", "once", "here", "there", "where", "why", "how",
    "all", "any", "both", "each", "few", "more", "most", "other", "some",
    "such", "no", "nor", "not", "only", "own", "same", "than", "too",
    "very", "can", "will", "just", "should", "could", "would", "may",
    "might", "must", "shall", "now", "ever", "never", "always", "often",
    "sometimes", "rarely", "i", "you", "he", "she", "it", "we", "they",
    "me", "him", "her", "us", "them", "my", "your", "his", "its", "our",
    "their", "mine", "yours", "ours", "theirs", "this", "that", "these",
    "those", "who", "whom", "whose", "which", "what", "is", "am", "are",
    "was", "were", "be", "been", "being", "have", "has", "had", "having",
    "do", "does", "did", "doing", "as", "until", "upon", "per", "via",
    "yes", "ok", "okay", "please", "thanks", "thank", "hello", "hey",
)

#: Common everyday vocabulary: verbs, nouns, adjectives, adverbs used by the
#: synthetic sentence templates and by the language model.
COMMON_WORDS: tuple[str, ...] = (
    "time", "year", "people", "way", "day", "man", "woman", "child",
    "children", "world", "life", "hand", "part", "place", "case", "week",
    "company", "system", "program", "question", "work", "government",
    "number", "night", "point", "home", "water", "room", "mother", "father",
    "area", "money", "story", "fact", "month", "lot", "right", "study",
    "book", "eye", "job", "word", "business", "issue", "side", "kind",
    "head", "house", "service", "friend", "friends", "power", "hour",
    "game", "line", "end", "member", "law", "car", "city", "community",
    "name", "president", "team", "minute", "idea", "body", "information",
    "back", "parent", "face", "others", "level", "office", "door", "health",
    "person", "art", "war", "history", "party", "result", "change",
    "morning", "reason", "research", "girl", "guy", "moment", "air",
    "teacher", "force", "education", "foot", "boy", "age", "policy",
    "everything", "process", "music", "market", "sense", "nation", "plan",
    "college", "interest", "death", "experience", "effect", "use", "class",
    "control", "care", "field", "development", "role", "effort", "rate",
    "heart", "drug", "show", "leader", "light", "voice", "wife", "police",
    "mind", "price", "report", "decision", "son", "view", "relationship",
    "town", "road", "arm", "difference", "value", "building", "action",
    "model", "season", "society", "tax", "director", "position", "player",
    "record", "paper", "space", "ground", "form", "event", "official",
    "matter", "center", "couple", "site", "project", "activity", "star",
    "table", "need", "court", "american", "americans", "oil", "situation",
    "cost", "industry", "figure", "street", "image", "phone", "data",
    "picture", "practice", "piece", "land", "product", "doctor", "wall",
    "news", "test", "movie", "north", "love", "support", "technology",
    "go", "get", "make", "know", "think", "take", "see", "come", "want",
    "look", "find", "give", "tell", "ask", "seem", "feel", "try", "leave",
    "call", "say", "said", "need", "become", "put", "mean", "keep", "let",
    "begin", "help", "talk", "turn", "start", "show", "hear", "play",
    "run", "move", "like", "live", "believe", "hold", "bring", "happen",
    "write", "provide", "sit", "stand", "lose", "pay", "meet", "include",
    "continue", "set", "learn", "lead", "understand", "watch", "follow",
    "stop", "create", "speak", "read", "allow", "add", "spend", "grow",
    "open", "walk", "win", "offer", "remember", "consider", "appear",
    "buy", "wait", "serve", "die", "send", "expect", "build", "stay",
    "fall", "cut", "reach", "kill", "remain", "suggest", "raise", "pass",
    "sell", "require", "report", "decide", "pull", "vote", "voted",
    "good", "new", "first", "last", "long", "great", "little", "old",
    "big", "high", "different", "small", "large", "next", "early", "young",
    "important", "public", "bad", "able", "best", "better", "worst",
    "sure", "free", "true", "false", "whole", "real", "fake", "clear",
    "strong", "weak", "certain", "likely", "hard", "easy", "possible",
    "recent", "late", "single", "medical", "current", "wrong", "private",
    "past", "foreign", "fine", "common", "poor", "natural", "significant",
    "similar", "hot", "cold", "dead", "central", "happy", "sad", "angry",
    "serious", "ready", "simple", "left", "physical", "general",
    "environmental", "financial", "blue", "red", "green", "white", "black",
    "democratic", "conservative", "liberal", "radical", "really", "also",
    "even", "still", "already", "actually", "probably", "finally",
    "totally", "completely", "absolutely", "literally", "honestly",
    "truly", "apparently", "clearly", "obviously", "simply", "exactly",
    "today", "tomorrow", "yesterday", "tonight", "everyone", "everybody",
    "someone", "somebody", "anyone", "nobody", "nothing", "something",
    "anything", "stupid", "crazy", "insane", "dumb", "smart", "brilliant",
    "amazing", "awesome", "terrible", "horrible", "awful", "disgusting",
    "beautiful", "ugly", "nice", "cool", "weird", "strange", "normal",
    "proud", "afraid", "scared", "worried", "concerned", "excited",
    "thread", "post", "comment", "share", "retweet", "follow", "block",
    "report", "account", "profile", "timeline", "trending", "viral",
    "online", "internet", "website", "platform", "media", "press",
    "journalist", "article", "headline", "source", "evidence", "claim",
    "truth", "lie", "lies", "lying", "liar", "hoax", "scam", "fraud",
    "corrupt", "corruption", "scandal", "coverup", "agenda", "narrative",
    "propaganda", "censorship", "censored", "banned", "ban", "delete",
    "deleted", "removed", "moderation", "moderator", "algorithm",
    "amazon", "google", "facebook", "twitter", "reddit", "youtube",
    "instagram", "tiktok", "apple", "microsoft",
)

#: Political vocabulary — the paper's running examples ("democRATs",
#: "repubLIEcans") come from this register.
POLITICS_WORDS: tuple[str, ...] = (
    "democrats", "democrat", "republicans", "republican", "election",
    "elections", "ballot", "ballots", "senate", "senator", "senators",
    "congress", "congressman", "congresswoman", "house", "representative",
    "representatives", "president", "presidential", "biden", "trump",
    "administration", "campaign", "candidate", "candidates", "politician",
    "politicians", "politics", "political", "policy", "policies",
    "legislation", "bill", "amendment", "constitution", "constitutional",
    "democracy", "socialism", "socialist", "socialists", "communism",
    "communist", "communists", "fascism", "fascist", "fascists", "leftist",
    "leftists", "rightwing", "leftwing", "conservatives", "liberals",
    "progressive", "progressives", "patriot", "patriots", "freedom",
    "liberty", "rights", "protest", "protesters", "riot", "rioters",
    "impeach", "impeachment", "investigation", "committee", "hearing",
    "supreme", "justice", "judges", "governor", "mayor", "voter", "voters",
    "voting", "fraud", "rigged", "stolen", "landslide", "majority",
    "minority", "primary", "caucus", "debate", "swamp", "establishment",
    "deep", "state", "globalist", "globalists", "nationalist",
    "nationalists", "antifa", "maga", "woke", "partisan", "bipartisan",
)

#: Public-health vocabulary — the "vaccine mandate" scenario.
HEALTH_WORDS: tuple[str, ...] = (
    "vaccine", "vaccines", "vaccinated", "vaccination", "vaccinations",
    "unvaccinated", "vax", "vaxxed", "antivax", "antivaxxer", "antivaxxers",
    "mandate", "mandates", "mandatory", "booster", "boosters", "dose",
    "doses", "shot", "shots", "jab", "jabs", "pfizer", "moderna",
    "astrazeneca", "covid", "coronavirus", "pandemic", "epidemic", "virus",
    "variant", "variants", "omicron", "delta", "infection", "infections",
    "infected", "immunity", "immune", "antibodies", "mask", "masks",
    "masking", "lockdown", "lockdowns", "quarantine", "isolation",
    "hospital", "hospitals", "hospitalized", "icu", "ventilator", "nurse",
    "nurses", "doctors", "physician", "pharma", "pharmaceutical", "cdc",
    "fda", "who", "fauci", "science", "scientist", "scientists", "study",
    "studies", "trial", "trials", "efficacy", "effectiveness", "safety",
    "side", "effects", "adverse", "reaction", "reactions", "myocarditis",
    "microchip", "sheep", "sheeple", "plandemic", "scamdemic", "depopulation",
    "suicide", "depression", "anxiety", "selfharm", "overdose", "addiction",
    "alcohol", "drugs", "therapy", "therapist", "mental", "illness",
    "disorder", "trauma", "crisis", "hotline",
)

#: Abusive / toxicity vocabulary — hate-speech and cyberbullying corpora are
#: where the paper mines many perturbations.  Included because the library's
#: purpose is to *detect and normalize* abusive perturbations.
ABUSE_WORDS: tuple[str, ...] = (
    "hate", "hateful", "hater", "haters", "racist", "racists", "racism",
    "bigot", "bigots", "bigotry", "sexist", "sexism", "misogynist",
    "misogyny", "nazi", "nazis", "supremacist", "supremacists", "terrorist",
    "terrorists", "terrorism", "extremist", "extremists", "violence",
    "violent", "attack", "attacks", "threat", "threats", "threaten",
    "threatening", "abuse", "abusive", "harass", "harassment", "bully",
    "bullies", "bullying", "cyberbullying", "troll", "trolls", "trolling",
    "doxx", "doxxing", "slur", "slurs", "insult", "insults", "offensive",
    "idiot", "idiots", "moron", "morons", "imbecile", "loser", "losers",
    "pathetic", "worthless", "garbage", "trash", "scum", "filth", "vermin",
    "rats", "snake", "snakes", "pig", "pigs", "dog", "dogs", "animal",
    "animals", "savage", "savages", "freak", "freaks", "creep", "creeps",
    "pervert", "perverts", "predator", "predators", "pedophile",
    "pedophiles", "groomer", "groomers", "kill", "killed", "killing",
    "murder", "murderer", "die", "death", "dead", "destroy", "destroyed",
    "eliminate", "eradicate", "exterminate", "lynch", "shoot", "shooting",
    "gun", "guns", "bomb", "bombs", "porn", "pornography", "sex", "sexual",
    "nude", "nudes", "explicit", "nsfw", "whore", "slut", "bitch",
    "bastard", "damn", "hell", "crap", "sucks", "stfu", "gtfo", "wtf",
    "lmao", "lol", "smh", "fml",
)

#: Religion / nationality vocabulary — the paper notes these are often
#: hyphen-perturbed ("mus-lim", "chi-nese") in hateful contexts.
IDENTITY_WORDS: tuple[str, ...] = (
    "muslim", "muslims", "islam", "islamic", "christian", "christians",
    "christianity", "jewish", "jew", "jews", "judaism", "catholic",
    "catholics", "protestant", "hindu", "hindus", "buddhist", "buddhists",
    "atheist", "atheists", "religion", "religious", "church", "mosque",
    "synagogue", "temple", "chinese", "china", "asian", "asians", "mexican",
    "mexicans", "mexico", "immigrant", "immigrants", "immigration",
    "migrant", "migrants", "refugee", "refugees", "foreigner", "foreigners",
    "african", "africans", "black", "white", "latino", "latina", "hispanic",
    "indian", "indians", "arab", "arabs", "russian", "russians", "russia",
    "ukrainian", "ukrainians", "ukraine", "american", "europe", "european",
    "europeans", "gay", "gays", "lesbian", "lesbians", "bisexual",
    "transgender", "trans", "queer", "lgbt", "lgbtq", "gender", "woman",
    "women", "man", "men", "female", "male", "feminist", "feminists",
    "feminism", "minorities", "ethnic", "ethnicity", "race", "racial",
    "diversity", "inclusion", "equality", "equity", "discrimination",
    "prejudice", "stereotype", "stereotypes", "privilege", "oppression",
    "oppressed", "justice", "injustice",
)

#: Words the paper uses as explicit examples; kept separate so tests and
#: benchmarks can reference the exact set.
PAPER_EXAMPLE_WORDS: tuple[str, ...] = (
    "democrats", "republicans", "vaccine", "suicide", "muslim", "chinese",
    "amazon", "porn", "depression", "lesbian", "dirty", "the",
    "tree", "burned", "race", "war", "thinking", "fake", "responsible",
    "attempted", "calling", "mandate", "politics",
)

#: All thematic groups, keyed by name.  The synthetic corpus builders pick
#: topic vocabulary from these groups.
WORD_GROUPS: dict[str, tuple[str, ...]] = {
    "function": FUNCTION_WORDS,
    "common": COMMON_WORDS,
    "politics": POLITICS_WORDS,
    "health": HEALTH_WORDS,
    "abuse": ABUSE_WORDS,
    "identity": IDENTITY_WORDS,
    "paper_examples": PAPER_EXAMPLE_WORDS,
}


class EnglishLexicon:
    """Case-insensitive English lexicon with thematic groups.

    The lexicon answers two questions for the CrypText pipeline:

    * *is this token a correctly-spelled English word?* (``word in lexicon``)
      — used by the dictionary builder to decide which tokens are canonical
      words versus perturbation candidates, and by the normalizer to propose
      correction targets;
    * *which words belong to topic X?* (:meth:`group`) — used by the
      synthetic corpus builders and the keyword-enrichment benchmark.

    Parameters
    ----------
    words:
        Optional extra words to include beyond the bundled groups.
    include_groups:
        Names of bundled groups to include (default: all).
    """

    def __init__(
        self,
        words: Iterable[str] = (),
        include_groups: Iterable[str] | None = None,
    ) -> None:
        group_names = (
            tuple(WORD_GROUPS) if include_groups is None else tuple(include_groups)
        )
        unknown = [name for name in group_names if name not in WORD_GROUPS]
        if unknown:
            raise KeyError(f"unknown lexicon groups: {unknown}")
        self._groups: dict[str, frozenset[str]] = {
            name: frozenset(word.lower() for word in WORD_GROUPS[name])
            for name in group_names
        }
        words = tuple(words)
        extra = frozenset(word.lower() for word in words)
        if extra:
            self._groups["extra"] = extra
        self._words: frozenset[str] = frozenset().union(*self._groups.values())
        # Mixed-case lexicon forms ("iPhone", "McDonald") keyed by their
        # lowered spelling.  Membership stays case-insensitive, but the
        # normalizer consults these to avoid rewriting a token whose exact
        # casing *is* the lexicon form (it is not emphasis capitalization).
        cased: dict[str, set[str]] = {}
        for word in words:
            if word != word.lower():
                cased.setdefault(word.lower(), set()).add(word)
        self._cased_forms: dict[str, frozenset[str]] = {
            lowered: frozenset(forms) for lowered, forms in cased.items()
        }

    #: Inflectional suffixes accepted by the morphological fallback of
    #: :meth:`is_word`, longest first so "worries" strips "es" before "s".
    _SUFFIXES: tuple[str, ...] = ("ings", "ing", "ers", "ies", "es", "ed", "er", "ly", "s", "d")

    @classmethod
    def _stem_candidates(cls, token: str) -> Iterator[str]:
        """Candidate base forms of ``token`` under the inflection rules.

        The single definition of the suffix-stripping morphology, consumed
        by both :meth:`_base_form_known` (case-insensitive word membership)
        and :meth:`is_lexicon_casing` (case-preserving form protection) so
        the two can never drift apart.
        """
        for suffix in cls._SUFFIXES:
            if len(token) - len(suffix) >= 3 and token.endswith(suffix):
                stem = token[: -len(suffix)]
                yield stem
                # "worries" -> "worri" -> "worry"; "studies" -> "study"
                if suffix in ("ies", "es"):
                    yield stem + "y"
                # "debated" -> "debat" -> "debate"
                if suffix in ("ed", "er", "ers", "ing", "ings", "d"):
                    yield stem + "e"
                # "stopped" -> "stopp" -> "stop"
                if len(stem) >= 4 and stem[-1] == stem[-2]:
                    yield stem[:-1]

    def _base_form_known(self, lowered: str) -> bool:
        """Whether stripping a common inflection suffix yields a known word."""
        return any(
            candidate in self._words for candidate in self._stem_candidates(lowered)
        )

    def __contains__(self, word: object) -> bool:
        if not isinstance(word, str):
            return False
        lowered = word.lower()
        return lowered in self._words or self._base_form_known(lowered)

    def __len__(self) -> int:
        return len(self._words)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._words))

    @property
    def words(self) -> frozenset[str]:
        """The full lowercase word set."""
        return self._words

    @property
    def group_names(self) -> tuple[str, ...]:
        """Names of the groups present in this lexicon."""
        return tuple(sorted(self._groups))

    def group(self, name: str) -> frozenset[str]:
        """Return the lowercase word set of group ``name``."""
        return self._groups[name]

    def groups(self) -> Mapping[str, frozenset[str]]:
        """Return every group as a read-only mapping."""
        return dict(self._groups)

    def is_word(self, token: str) -> bool:
        """Alias of ``token in lexicon`` with an explicit name."""
        return token in self

    def cased_forms(self, word: str) -> frozenset[str]:
        """Mixed-case lexicon spellings recorded for ``word`` (may be empty).

        Bundled groups are all lowercase, so this is only non-empty for
        words supplied to the constructor with deliberate casing
        ("iPhone", "McDonald").
        """
        return self._cased_forms.get(word.lower(), frozenset())

    def is_lexicon_casing(self, token: str) -> bool:
        """Whether ``token``'s exact casing is a recorded lexicon form.

        Inflections keep their stem's recorded casing — "iPhones" and
        "McDonalds" are the lexicon forms "iPhone" / "McDonald" plus a
        lowercase suffix, mirroring the morphological fallback that makes
        ``is_word`` accept them in the first place.
        """
        if token in self._cased_forms.get(token.lower(), frozenset()):
            return True
        if not self._cased_forms:
            return False
        # The same stem transforms that let is_word accept an inflection
        # protect it under its stem's recorded casing ("iPhoning" strips
        # "ing" and restores the "e" to find "iPhone").
        return any(
            candidate in self._cased_forms.get(candidate.lower(), frozenset())
            for candidate in self._stem_candidates(token)
        )

    def sample_space(self, *group_names: str) -> tuple[str, ...]:
        """Return a sorted tuple of the union of the named groups.

        With no arguments the entire lexicon is returned.  Sorted output makes
        seeded random sampling reproducible across Python hash randomization.
        """
        if not group_names:
            return tuple(sorted(self._words))
        union: set[str] = set()
        for name in group_names:
            union.update(self.group(name))
        return tuple(sorted(union))


@lru_cache(maxsize=1)
def default_lexicon() -> EnglishLexicon:
    """Return the process-wide default lexicon (all bundled groups)."""
    return EnglishLexicon()
