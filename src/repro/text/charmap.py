"""Visually-similar character maps used by the customized Soundex encoding.

The paper observes that human-written perturbations frequently replace a
letter with a digit or symbol that *looks* the same ("l" -> "1", "a" -> "@",
"S" -> "5") and that the original Soundex algorithm cannot recognize these
manipulations.  CrypText therefore customizes Soundex "to encode
visually-similar characters the same" (paper §III-A).

This module is the single source of truth for those equivalences.  It also
hosts the inventories of leetspeak substitutions (used by the synthetic
corpus builders and by the TextBugger baseline), word-internal separators
(hyphenation perturbations such as "mus-lim"), and emoticons (used as
insertion perturbations in the wild).
"""

from __future__ import annotations

#: Mapping from a visually-similar character to the canonical ASCII letter it
#: imitates.  Keys are matched case-insensitively where that makes sense; the
#: table lists lowercase canonical letters.  This table intentionally covers
#: the substitutions the paper calls out ("l"->"1", "a"->"@", "S"->"5") plus
#: the common leet/homoglyph inventory observed in abusive online text.
VISUAL_EQUIVALENTS: dict[str, str] = {
    # digits that imitate letters
    "0": "o",
    # "1" imitates both "i" and "l"; "i" is by far the more common intent in
    # evasive online text ("suic1de", "vacc1ne", "k1ll"), so that is the
    # canonical fold.  "|" keeps imitating "l".
    "1": "i",
    "3": "e",
    "4": "a",
    "5": "s",
    "6": "g",
    "7": "t",
    "8": "b",
    "9": "g",
    # symbols that imitate letters
    "@": "a",
    "$": "s",
    "!": "i",
    "|": "l",
    "+": "t",
    "(": "c",
    "<": "c",
    "{": "c",
    "[": "c",
    ")": "d",
    "€": "e",
    "£": "l",
    "¢": "c",
    "§": "s",
    # common unicode homoglyphs (cyrillic / greek lookalikes)
    "а": "a",  # CYRILLIC SMALL LETTER A
    "е": "e",  # CYRILLIC SMALL LETTER IE
    "о": "o",  # CYRILLIC SMALL LETTER O
    "р": "p",  # CYRILLIC SMALL LETTER ER
    "с": "c",  # CYRILLIC SMALL LETTER ES
    "х": "x",  # CYRILLIC SMALL LETTER HA
    "у": "y",  # CYRILLIC SMALL LETTER U
    "і": "i",  # CYRILLIC SMALL LETTER BYELORUSSIAN-UKRAINIAN I
    "ѕ": "s",  # CYRILLIC SMALL LETTER DZE
    "ј": "j",  # CYRILLIC SMALL LETTER JE
    "ԁ": "d",  # CYRILLIC SMALL LETTER KOMI DE
    "α": "a",  # GREEK SMALL LETTER ALPHA
    "β": "b",  # GREEK SMALL LETTER BETA
    "ε": "e",  # GREEK SMALL LETTER EPSILON
    "ι": "i",  # GREEK SMALL LETTER IOTA
    "κ": "k",  # GREEK SMALL LETTER KAPPA
    "ν": "v",  # GREEK SMALL LETTER NU
    "ο": "o",  # GREEK SMALL LETTER OMICRON
    "ρ": "p",  # GREEK SMALL LETTER RHO
    "τ": "t",  # GREEK SMALL LETTER TAU
    "υ": "u",  # GREEK SMALL LETTER UPSILON
}

#: The reverse direction: for each ASCII letter, the set of characters a
#: human might substitute for it.  Used by the synthetic perturbation
#: generators and by the machine-generated baselines (TextBugger's
#: "visually similar" operator, DeepWordBug's homoglyph operator).
LEET_SUBSTITUTIONS: dict[str, tuple[str, ...]] = {
    "a": ("@", "4", "а", "α"),
    "b": ("8", "β"),
    "c": ("(", "<", "с", "¢"),
    "d": (")", "ԁ"),
    "e": ("3", "€", "е", "ε"),
    "g": ("6", "9"),
    "i": ("1", "!", "і", "ι"),
    "l": ("1", "|", "£"),
    "o": ("0", "о", "ο"),
    "p": ("р", "ρ"),
    "s": ("5", "$", "ѕ", "§"),
    "t": ("7", "+", "τ"),
    "u": ("υ",),
    "x": ("х",),
    "y": ("у",),
}

#: Characters humans insert *inside* a word to break automatic keyword
#: matching without harming readability ("mus-lim", "vac.cine",
#: "chi_nese").  The customized Soundex strips these before encoding.
WORD_INTERNAL_SEPARATORS: frozenset[str] = frozenset({"-", ".", "_", "*", "’", "'", "·"})

#: A small inventory of emoticons observed as insertion perturbations.
EMOTICONS: tuple[str, ...] = (
    ":)", ":(", ":D", ";)", ":P", ":/", ":o", "xD", "<3", ":-)", ":-(", "^_^",
)


def visual_equivalence_class(char: str) -> str:
    """Return the canonical lowercase letter of ``char``'s visual class.

    Letters map to their own lowercase form.  Characters listed in
    :data:`VISUAL_EQUIVALENTS` map to the letter they imitate.  Any other
    character maps to itself (lowercased when possible), so the function is
    total and idempotent.

    >>> visual_equivalence_class("@")
    'a'
    >>> visual_equivalence_class("L")
    'l'
    >>> visual_equivalence_class("5")
    's'
    """
    if not char:
        return char
    lowered = char.lower()
    if lowered in VISUAL_EQUIVALENTS:
        return VISUAL_EQUIVALENTS[lowered]
    if char in VISUAL_EQUIVALENTS:
        return VISUAL_EQUIVALENTS[char]
    return lowered


def fold_visual_characters(text: str) -> str:
    """Fold every character of ``text`` onto its visual equivalence class.

    The output is lowercase and contains no leet/homoglyph characters, which
    is exactly the preprocessing the customized Soundex applies so that
    "dem0cr@ts" and "democrats" receive the same encoding.

    >>> fold_visual_characters("dem0cr@ts")
    'democrats'
    >>> fold_visual_characters("suic1de")
    'suicide'
    """
    return "".join(visual_equivalence_class(ch) for ch in text)


def is_word_internal_separator(char: str) -> bool:
    """Return ``True`` if ``char`` is a separator humans insert inside words."""
    return char in WORD_INTERNAL_SEPARATORS


def strip_word_internal_separators(token: str) -> str:
    """Remove hyphenation-style separators from ``token``.

    >>> strip_word_internal_separators("mus-lim")
    'muslim'
    >>> strip_word_internal_separators("vac.cine")
    'vaccine'
    """
    return "".join(ch for ch in token if ch not in WORD_INTERNAL_SEPARATORS)
