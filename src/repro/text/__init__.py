"""Text substrate: tokenization, character maps, and the English lexicon.

This subpackage provides the low-level text machinery that every CrypText
function builds on:

* :mod:`repro.text.charmap` — visually-similar character ("homoglyph" /
  "leet") mappings that the customized Soundex folds together, plus emoticon
  and separator inventories used by the perturbation taxonomy;
* :mod:`repro.text.unicode_fold` — accent/diacritic folding (the VIPER
  baseline perturbs with accented characters; normalization must undo them);
* :mod:`repro.text.tokenizer` — a whitespace/punctuation tokenizer that keeps
  track of character spans so perturbed tokens can be highlighted in place;
* :mod:`repro.text.wordlist` — the bundled English lexicon used as the
  "correctly spelled" vocabulary of the perturbation dictionary.
"""

from .charmap import (
    VISUAL_EQUIVALENTS,
    LEET_SUBSTITUTIONS,
    EMOTICONS,
    fold_visual_characters,
    visual_equivalence_class,
    is_word_internal_separator,
    strip_word_internal_separators,
)
from .unicode_fold import fold_accents, fold_text
from .tokenizer import Token, Tokenizer, tokenize, detokenize
from .wordlist import EnglishLexicon, default_lexicon

__all__ = [
    "VISUAL_EQUIVALENTS",
    "LEET_SUBSTITUTIONS",
    "EMOTICONS",
    "fold_visual_characters",
    "visual_equivalence_class",
    "is_word_internal_separator",
    "strip_word_internal_separators",
    "fold_accents",
    "fold_text",
    "Token",
    "Tokenizer",
    "tokenize",
    "detokenize",
    "EnglishLexicon",
    "default_lexicon",
]
