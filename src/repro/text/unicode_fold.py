"""Accent and diacritic folding.

The VIPER baseline (Eger et al., NAACL 2019) perturbs text by replacing
characters with accented variants ("democrats" -> "ḋemocrāts").  Human
writers occasionally do the same.  Both the customized Soundex encoder and
the Normalization function therefore need a cheap, dependency-free way to
strip combining marks and map accented code points back to their ASCII base
letters.
"""

from __future__ import annotations

import unicodedata


def fold_accents(char: str) -> str:
    """Return ``char`` with diacritics removed, or ``char`` unchanged.

    The folding is performed via NFKD decomposition: combining marks are
    dropped and the base character kept.  Characters that do not decompose
    (including the homoglyphs handled by :mod:`repro.text.charmap`) are
    returned unchanged.

    >>> fold_accents("ā")
    'a'
    >>> fold_accents("ḋ")
    'd'
    >>> fold_accents("x")
    'x'
    """
    if not char:
        return char
    decomposed = unicodedata.normalize("NFKD", char)
    stripped = "".join(c for c in decomposed if not unicodedata.combining(c))
    return stripped if stripped else char


def fold_text(text: str) -> str:
    """Apply :func:`fold_accents` to every character of ``text``.

    >>> fold_text("ḋemocrāts")
    'democrats'
    """
    return "".join(fold_accents(ch) for ch in text)
