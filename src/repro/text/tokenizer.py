"""Span-preserving tokenizer.

CrypText works at the level of *tokens* found in noisy user-generated text:
the database is built by tokenizing every sentence of the source corpora
(paper §III-A), and the Look Up / Normalization / Perturbation functions all
need to replace or highlight individual tokens *in place* inside the original
string (the GUI highlights corrected or perturbed tokens, Figures 2-3).

The tokenizer therefore keeps, for each token, its character span in the
source text so that edits can be spliced back without disturbing whitespace
or punctuation.  Tokens are defined as maximal runs of "wordish" characters:
letters, digits, and the leet/homoglyph symbols and word-internal separators
that human-written perturbations embed inside words ("dem0cr@ts",
"mus-lim", "republic@@ns").  URLs, @-mentions and #-hashtags are kept as
single tokens and flagged so the perturbation machinery can skip them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..errors import TokenizationError

# Characters that may appear inside a word-like token.  Letters and digits are
# matched via \w (unicode-aware); the explicit set adds the perturbation
# symbols that \w excludes.
_WORD_EXTRA = r"@\$!\|\+\(\)<>\{\}\[\]€£¢§\-\.\*'’_·"

_TOKEN_PATTERN = re.compile(
    r"""
    (?P<url>https?://\S+|www\.\S+)            # URLs
    | (?P<mention>@\w+)                       # @mentions
    | (?P<hashtag>\#\w+)                      # #hashtags
    | (?P<word>[\w%s]+)                       # word-like tokens (incl. leet symbols)
    """
    % _WORD_EXTRA,
    re.VERBOSE | re.UNICODE,
)

#: Token kinds emitted by :class:`Tokenizer`.
TOKEN_KINDS = ("word", "url", "mention", "hashtag")

#: Characters trimmed from the edges of word tokens.  Inside a word they are
#: perturbation signals ("mus-lim", "suic!de"); at the edges they are almost
#: always ordinary punctuation ("republicans.", "(hello)", "stop!").
_EDGE_TRIM = set(".-'’*_·!()<>{}[]")


def _trim_word_span(raw: str, start: int, end: int) -> tuple[str, int, int]:
    """Strip edge punctuation from a word match, keeping the span consistent."""
    left, right = 0, len(raw)
    while left < right and raw[left] in _EDGE_TRIM:
        left += 1
    while right > left and raw[right - 1] in _EDGE_TRIM:
        right -= 1
    return raw[left:right], start + left, start + right


@dataclass(frozen=True)
class Token:
    """A token together with its character span in the source text.

    Attributes
    ----------
    text:
        The raw token text, case preserved.
    start / end:
        Character offsets such that ``source[start:end] == text``.
    kind:
        One of :data:`TOKEN_KINDS`.  Only ``"word"`` tokens participate in
        perturbation and normalization; the other kinds are preserved
        verbatim.
    index:
        Position of the token in the token sequence of its source text.
    """

    text: str
    start: int
    end: int
    kind: str = "word"
    index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in TOKEN_KINDS:
            raise TokenizationError(f"unknown token kind: {self.kind!r}")
        if self.end - self.start != len(self.text):
            raise TokenizationError(
                f"token span [{self.start}, {self.end}) does not match text "
                f"of length {len(self.text)}"
            )

    @property
    def is_word(self) -> bool:
        """Whether the token is an ordinary word (eligible for perturbation)."""
        return self.kind == "word"

    def replace_text(self, new_text: str) -> "Token":
        """Return a copy of the token carrying ``new_text`` (span end adjusted)."""
        return Token(
            text=new_text,
            start=self.start,
            end=self.start + len(new_text),
            kind=self.kind,
            index=self.index,
        )


class Tokenizer:
    """Tokenizer that records character spans and token kinds.

    Parameters
    ----------
    lowercase:
        If ``True``, token text is lowercased (spans still refer to the
        original string).  The dictionary builder uses case-sensitive tokens
        because capitalization-as-emphasis ("democRATs") is itself a
        perturbation signal, so the default is ``False``.
    min_token_length:
        Tokens shorter than this are dropped (default 1 keeps everything).
    """

    def __init__(self, lowercase: bool = False, min_token_length: int = 1) -> None:
        if min_token_length < 1:
            raise TokenizationError("min_token_length must be >= 1")
        self.lowercase = lowercase
        self.min_token_length = min_token_length

    def tokenize(self, text: str) -> list[Token]:
        """Tokenize ``text`` into a list of :class:`Token`.

        Raises
        ------
        TokenizationError
            If ``text`` is not a string.
        """
        if not isinstance(text, str):
            raise TokenizationError(f"expected str, got {type(text).__name__}")
        tokens: list[Token] = []
        for match in _TOKEN_PATTERN.finditer(text):
            kind = match.lastgroup or "word"
            raw = match.group()
            start, end = match.start(), match.end()
            if kind == "word":
                raw, start, end = _trim_word_span(raw, start, end)
            if len(raw) < self.min_token_length or not raw:
                continue
            token_text = raw.lower() if self.lowercase else raw
            tokens.append(
                Token(
                    text=token_text,
                    start=start,
                    end=end,
                    kind=kind,
                    index=len(tokens),
                )
            )
        return tokens

    def iter_tokens(self, texts: Iterable[str]) -> Iterator[Token]:
        """Yield tokens of every text in ``texts`` (document boundaries ignored)."""
        for text in texts:
            yield from self.tokenize(text)

    def word_tokens(self, text: str) -> list[Token]:
        """Tokenize and keep only ``"word"`` tokens."""
        return [token for token in self.tokenize(text) if token.is_word]


def tokenize(text: str, lowercase: bool = False) -> list[Token]:
    """Module-level convenience wrapper around :class:`Tokenizer`."""
    return Tokenizer(lowercase=lowercase).tokenize(text)


def detokenize(source: str, replacements: Sequence[tuple[Token, str]]) -> str:
    """Splice token replacements back into ``source``.

    ``replacements`` is a sequence of ``(token, new_text)`` pairs where every
    token must originate from tokenizing ``source``.  Replacements are applied
    right-to-left so earlier spans remain valid.  Overlapping spans raise
    :class:`~repro.errors.TokenizationError`.

    >>> toks = tokenize("the dirty republicans")
    >>> detokenize("the dirty republicans", [(toks[1], "dirrrty")])
    'the dirrrty republicans'
    """
    ordered = sorted(replacements, key=lambda pair: pair[0].start, reverse=True)
    previous_start: int | None = None
    result = source
    for token, new_text in ordered:
        if token.start < 0 or token.end > len(source):
            raise TokenizationError(
                f"token span [{token.start}, {token.end}) outside source of "
                f"length {len(source)}"
            )
        if source[token.start:token.end].lower() != token.text.lower():
            raise TokenizationError(
                f"token text {token.text!r} does not match source span "
                f"{source[token.start:token.end]!r}"
            )
        if previous_start is not None and token.end > previous_start:
            raise TokenizationError("overlapping replacement spans")
        result = result[: token.start] + new_text + result[token.end:]
        previous_start = token.start
    return result
