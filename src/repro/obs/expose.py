"""Prometheus text exposition (format 0.0.4) for collected samples.

Pure formatting: takes the ``(name, type, help, labels, value)`` samples
produced by ``MetricsRegistry.collect`` (plus adapter output) and renders
the text a Prometheus scraper parses.  Families are emitted in first-seen
order with all samples of a name kept consecutive, as the format requires.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

__all__ = ["CONTENT_TYPE", "render_text"]

#: The Content-Type a scrape endpoint must answer with.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: Mapping[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(key, str(labels[key])) for key in sorted(labels)]
    pairs.extend(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label(value)}"' for key, value in pairs)
    return "{" + body + "}"


def render_text(samples: Iterable[tuple]) -> str:
    """Render collected samples as Prometheus exposition text."""
    families: dict[str, dict[str, object]] = {}
    order: list[str] = []
    for name, kind, help_text, labels, value in samples:
        family = families.get(name)
        if family is None:
            family = {"type": kind, "help": help_text, "samples": []}
            families[name] = family
            order.append(name)
        family["samples"].append((labels, value))

    lines: list[str] = []
    for name in order:
        family = families[name]
        help_text = str(family["help"])
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {family['type']}")
        for labels, value in family["samples"]:  # type: ignore[union-attr]
            if family["type"] == "histogram":
                _render_histogram(lines, name, labels, value)
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} {_format_value(value)}"
                )
    return "\n".join(lines) + "\n"


def _render_histogram(
    lines: list[str],
    name: str,
    labels: Mapping[str, str],
    snapshot: Mapping[str, object],
) -> None:
    buckets = snapshot["buckets"]
    for bound, cumulative in buckets:  # type: ignore[union-attr]
        le = _format_labels(labels, (("le", _format_value(bound)),))
        lines.append(f"{name}_bucket{le} {int(cumulative)}")
    suffix = _format_labels(labels)
    lines.append(f"{name}_sum{suffix} {_format_value(float(snapshot['sum']))}")
    lines.append(f"{name}_count{suffix} {int(snapshot['count'])}")
