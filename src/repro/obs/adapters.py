"""Adapters lifting the existing ``stats()`` surfaces into metric samples.

Every subsystem already reports operational state through ad-hoc dicts —
compiled-cache counters, per-kernel hit counts, WAL segment state, follower
lag, breaker states, maintenance counters, sanitizer held-time percentiles.
These functions translate those dicts into exposition samples *at scrape
time*, holding no global registrations and no long-lived references: the
service and CLI pass their own objects in, so building a system never leaks
it into the process-global registry.

Counter-typed samples carry the subsystem's absolute cumulative value,
which is exactly what a Prometheus counter is; gauges carry point-in-time
state.  ``None`` values (e.g. lag before the first sync) are skipped rather
than faked as zero.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..analysis.sanitizer import active as sanitizer_active
from .registry import OBS, Sample

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pipeline import CrypText
    from ..replication.replica_set import ReplicaSet
    from ..wal.maintenance import MaintenanceScheduler

__all__ = [
    "maintenance_samples",
    "replication_samples",
    "sanitizer_samples",
    "service_samples",
    "system_samples",
]

_BREAKER_STATES = ("closed", "open", "half_open")

_CACHE_EVENTS = ("hits", "misses", "evictions", "invalidations")

_MAINTENANCE_COUNTERS = (
    ("ticks", "cryptext_maintenance_ticks_total", "Scheduler ticks observed."),
    ("autosaves", "cryptext_maintenance_autosaves_total", "Auto-saves performed."),
    (
        "incremental_saves",
        "cryptext_maintenance_incremental_saves_total",
        "Incremental (delta) snapshot saves.",
    ),
    ("full_saves", "cryptext_maintenance_full_saves_total", "Full snapshot saves."),
    ("compactions", "cryptext_maintenance_compactions_total", "Snapshot-chain compactions."),
    (
        "wal_truncations",
        "cryptext_maintenance_wal_truncations_total",
        "WAL truncations after covered snapshots.",
    ),
    (
        "superseded_removed",
        "cryptext_maintenance_superseded_removed_total",
        "Superseded WAL segments garbage-collected.",
    ),
)


def _gauge(name: str, help_text: str, labels: dict[str, str], value) -> Sample:
    return (name, "gauge", help_text, labels, float(value))


def _counter(name: str, help_text: str, labels: dict[str, str], value) -> Sample:
    return (name, "counter", help_text, labels, float(value))


def system_samples(system: "CrypText") -> list[Sample]:
    """Dictionary, compiled-cache, kernel, and WAL state of one system."""
    samples: list[Sample] = []
    stats = system.stats()
    samples.append(
        _gauge(
            "cryptext_dictionary_tokens",
            "Unique tokens held by the perturbation dictionary.",
            {},
            stats.total_tokens,
        )
    )
    samples.append(
        _gauge(
            "cryptext_dictionary_occurrences",
            "Total token occurrences observed (paper's 2M+ scale figure).",
            {},
            stats.total_occurrences,
        )
    )
    cache = system.dictionary.compiled_cache_stats()
    for event in _CACHE_EVENTS:
        samples.append(
            _counter(
                "cryptext_compiled_cache_events_total",
                "Compiled-bucket LRU events, by event kind.",
                {"event": event},
                cache[event],
            )
        )
    samples.append(
        _gauge(
            "cryptext_compiled_cache_size",
            "Compiled buckets currently cached.",
            {},
            cache["size"],
        )
    )
    samples.append(
        _gauge(
            "cryptext_compiled_cache_capacity",
            "Compiled-bucket LRU capacity (config.cache_max_entries).",
            {},
            cache["capacity"],
        )
    )
    kernels = cache.get("kernels")
    if isinstance(kernels, dict):
        for kernel, hits in sorted(kernels.items()):
            samples.append(
                _counter(
                    "cryptext_kernel_hits_total",
                    "Matches served, by match kernel (auto resolution included).",
                    {"kernel": str(kernel)},
                    hits,
                )
            )
    wal = system.dictionary.wal
    if wal is not None:
        wal_stats = wal.stats()
        samples.append(
            _gauge(
                "cryptext_wal_last_seq",
                "Sequence number of the newest journaled record.",
                {},
                wal_stats.last_seq,
            )
        )
        samples.append(
            _gauge(
                "cryptext_wal_segments",
                "Live WAL segment files.",
                {},
                wal_stats.segments,
            )
        )
        samples.append(
            _gauge(
                "cryptext_wal_bytes",
                "Total bytes across live WAL segments.",
                {},
                wal_stats.total_bytes,
            )
        )
    return samples


def replication_samples(replica_set: "ReplicaSet") -> list[Sample]:
    """Leader position, per-follower lag, routing counters, breaker states."""
    samples: list[Sample] = []
    status = replica_set.status()
    if status["leader_seq"] is not None:
        samples.append(
            _gauge(
                "cryptext_replication_leader_seq",
                "Leader WAL sequence followers chase.",
                {},
                status["leader_seq"],
            )
        )
    for target, value in (
        ("followers", status["routed_to_followers"]),
        ("leader", status["routed_to_leader"]),
    ):
        samples.append(
            _counter(
                "cryptext_replica_reads_total",
                "Reads routed, by target.",
                {"target": target},
                value,
            )
        )
    samples.append(
        _counter(
            "cryptext_replica_stale_reads_total",
            "Reads served by a follower past the staleness bound.",
            {},
            status["stale_reads"],
        )
    )
    samples.append(
        _counter(
            "cryptext_replica_read_failovers_total",
            "Follower reads that failed over to the leader.",
            {},
            status["read_failovers"],
        )
    )
    for member in status["followers"]:
        labels = {"follower": str(member["name"])}
        if member.get("replication_lag_seqs") is not None:
            samples.append(
                _gauge(
                    "cryptext_replication_lag_seqs",
                    "Records the follower is behind the leader.",
                    labels,
                    member["replication_lag_seqs"],
                )
            )
        if member.get("replication_lag_seconds") is not None:
            samples.append(
                _gauge(
                    "cryptext_replication_lag_seconds",
                    "Seconds since the follower last drew level with the leader.",
                    labels,
                    member["replication_lag_seconds"],
                )
            )
        samples.append(
            _gauge(
                "cryptext_follower_fresh",
                "1 while the follower is within the staleness bound.",
                labels,
                1.0 if member.get("fresh") else 0.0,
            )
        )
        samples.append(
            _gauge(
                "cryptext_follower_mapped_bytes",
                "Bytes of snapshot shards the follower serves via mmap.",
                labels,
                member["mapped_bytes"],
            )
        )
        samples.append(
            _counter(
                "cryptext_follower_polls_total",
                "WAL tail polls attempted by the follower.",
                labels,
                member["polls"],
            )
        )
        samples.append(
            _counter(
                "cryptext_follower_poll_errors_total",
                "Follower polls that raised.",
                labels,
                member["poll_errors"],
            )
        )
        breaker = member.get("breaker")
        if isinstance(breaker, dict):
            for state in _BREAKER_STATES:
                samples.append(
                    _gauge(
                        "cryptext_breaker_state",
                        "One-hot circuit-breaker state per follower.",
                        {**labels, "state": state},
                        1.0 if breaker.get("state") == state else 0.0,
                    )
                )
            samples.append(
                _counter(
                    "cryptext_breaker_times_opened_total",
                    "Times the follower's breaker opened.",
                    labels,
                    breaker.get("times_opened", 0),
                )
            )
            samples.append(
                _counter(
                    "cryptext_breaker_rejected_calls_total",
                    "Calls rejected while the breaker was open.",
                    labels,
                    breaker.get("rejected_calls", 0),
                )
            )
    return samples


def maintenance_samples(scheduler: "MaintenanceScheduler") -> list[Sample]:
    """Scheduler counters and running state."""
    status = scheduler.status()
    samples: list[Sample] = [
        _gauge(
            "cryptext_maintenance_running",
            "1 while the background maintenance thread is running.",
            {},
            1.0 if status.get("running") else 0.0,
        )
    ]
    for key, name, help_text in _MAINTENANCE_COUNTERS:
        samples.append(_counter(name, help_text, {}, status.get(key, 0)))
    return samples


def sanitizer_samples() -> list[Sample]:
    """Lock held-time histograms, present only under ``CRYPTEXT_SANITIZE=1``."""
    sanitizer = sanitizer_active()
    if sanitizer is None:
        return []
    samples: list[Sample] = []
    for name, histogram in sorted(sanitizer.held_time_histograms().items()):
        samples.append(
            (
                "cryptext_lock_held_seconds",
                "histogram",
                "Time project locks were held, by hierarchy name (sanitizer).",
                {"lock": name},
                histogram.snapshot(),
            )
        )
    return samples


def service_samples(service) -> list[Sample]:
    """Everything one scrape of a service should see beyond the registry.

    ``service`` is a ``CrypTextService``; its bound system, scheduler, and
    replica set are lifted when present.  Sanitizer held-time histograms
    ride along only when both OBS and the sanitizer are armed — the
    satellite contract for ``lock_held_seconds``.
    """
    samples = system_samples(service.cryptext)
    if service.scheduler is not None:
        samples.extend(maintenance_samples(service.scheduler))
    if service.replica_set is not None:
        samples.extend(replication_samples(service.replica_set))
    if OBS.armed:
        samples.extend(sanitizer_samples())
    return samples
