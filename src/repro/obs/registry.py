"""Process-global, thread-safe metrics registry with an armed/disarmed guard.

The hot-path contract copies the fault-injection registry
(``resilience/faults.py``): ``OBS`` is a module global, call sites pay a
single ``if OBS.armed:`` attribute read when observability is off, and every
mutator updates ``armed`` under the registry lock so a concurrent reader
sees either the old or the new configuration, never a torn one.  Arming
happens through ``CrypTextConfig.obs_enabled`` (the facade arms on
construction) or ``CRYPTEXT_OBS=1`` via :func:`maybe_arm_from_env`, which —
per the project's env discipline — is only called from CLI ``main()`` and
test bootstrap, never at library import time.

Lock ordering: the registry lock (``obs.registry``, rank 200) and the
per-histogram locks (``obs.metric``, rank 210) are leaf-most ranks so span
exits may record timings while WAL or replication locks are held.  The
inverse direction is forbidden by construction: ``collect()`` copies the
sample maps under the registry lock and *releases it* before rendering or
calling adapter code, so no project lock is ever acquired while a registry
lock is held.
"""

from __future__ import annotations

import contextlib
import math
import os
import time
from collections import deque
from typing import Iterable, Iterator, Mapping

from ..analysis.sanitizer import tracked_lock
from .histogram import Histogram
from .trace import TraceContext, current_trace

__all__ = [
    "ENV_VAR",
    "OBS",
    "MetricsRegistry",
    "Sample",
    "maybe_arm_from_env",
]

ENV_VAR = "CRYPTEXT_OBS"

#: Default slow-query threshold (milliseconds); mirrors
#: ``CrypTextConfig.slow_query_ms``.
DEFAULT_SLOW_QUERY_MS = 250.0

#: Ring-buffer capacity of the slow-query log.
SLOW_LOG_CAPACITY = 128

# Built-in metric names.  Adapters add more; see obs/adapters.py.
STAGE_SECONDS = "cryptext_stage_seconds"
REQUEST_SECONDS = "cryptext_request_seconds"
REQUESTS_TOTAL = "cryptext_requests_total"
SLOW_QUERIES_TOTAL = "cryptext_slow_queries_total"
OBS_ARMED = "cryptext_obs_armed"

HELP: dict[str, str] = {
    STAGE_SECONDS: "Latency of one pipeline stage (span), by stage name.",
    REQUEST_SECONDS: "End-to-end request latency, by route.",
    REQUESTS_TOTAL: "Requests finished, by route and HTTP status.",
    SLOW_QUERIES_TOTAL: "Requests slower than the slow-query threshold, by route.",
    OBS_ARMED: "1 while the metrics registry is armed, else 0.",
}

#: One exposition sample: ``(name, type, help, labels, value)``.  For
#: histograms ``value`` is the dict produced by ``Histogram.snapshot()``;
#: for counters/gauges it is a float.
Sample = tuple[str, str, str, Mapping[str, str], object]

LabelPairs = tuple[tuple[str, str], ...]


class _Span:
    """Times one stage; records into the registry (and active trace) on exit."""

    __slots__ = ("_registry", "_stage", "_started")

    def __init__(self, registry: "MetricsRegistry", stage: str) -> None:
        self._registry = registry
        self._stage = stage
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._registry.observe_stage(self._stage, time.perf_counter() - self._started)
        return False


class MetricsRegistry:
    """Counters, gauges, and latency histograms behind one armed flag."""

    def __init__(self) -> None:
        self.armed = False
        self.slow_query_ms = DEFAULT_SLOW_QUERY_MS
        self._lock = tracked_lock("obs.registry")
        self._counters: dict[tuple[str, LabelPairs], float] = {}
        self._gauges: dict[tuple[str, LabelPairs], float] = {}
        self._histograms: dict[tuple[str, LabelPairs], Histogram] = {}
        self._slow_queries: deque[dict[str, object]] = deque(maxlen=SLOW_LOG_CAPACITY)
        self._slow_query_count = 0

    # -- arming ---------------------------------------------------------

    def arm(self, *, slow_query_ms: float | None = None) -> None:
        """Enable recording; optionally set the slow-query threshold."""
        with self._lock:
            if slow_query_ms is not None:
                self.slow_query_ms = float(slow_query_ms)
            self.armed = True

    def disarm(self) -> None:
        with self._lock:
            self.armed = False

    @contextlib.contextmanager
    def scoped(self, *, slow_query_ms: float | None = None) -> Iterator["MetricsRegistry"]:
        """Arm for the duration of a ``with`` block, then restore."""
        with self._lock:
            previous_armed = self.armed
            previous_threshold = self.slow_query_ms
        self.arm(slow_query_ms=slow_query_ms)
        try:
            yield self
        finally:
            with self._lock:
                self.armed = previous_armed
                self.slow_query_ms = previous_threshold

    def reset(self) -> None:
        """Disarm and drop all recorded series (test isolation)."""
        with self._lock:
            self.armed = False
            self.slow_query_ms = DEFAULT_SLOW_QUERY_MS
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._slow_queries.clear()
            self._slow_query_count = 0

    # -- recording ------------------------------------------------------

    def inc(self, name: str, labels: LabelPairs = (), amount: float = 1.0) -> None:
        key = (name, tuple(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, labels: LabelPairs = ()) -> None:
        key = (name, tuple(labels))
        with self._lock:
            self._gauges[key] = float(value)

    def histogram(self, name: str, labels: LabelPairs = ()) -> Histogram:
        """Get or lazily create the histogram for ``(name, labels)``."""
        key = (name, tuple(labels))
        hist = self._histograms.get(key)
        if hist is None:
            with self._lock:
                hist = self._histograms.get(key)
                if hist is None:
                    hist = Histogram(lock=tracked_lock("obs.metric"))
                    self._histograms[key] = hist
        return hist

    def span(self, stage: str) -> _Span:
        """Context manager timing one named stage.

        Call sites guard with ``if OBS.armed:`` so the disarmed path never
        constructs a span; the span itself does not re-check.
        """
        return _Span(self, stage)

    def observe_stage(self, stage: str, seconds: float) -> None:
        self.histogram(STAGE_SECONDS, (("stage", stage),)).observe(seconds)
        trace = current_trace()
        if trace is not None:
            trace.add_stage(stage, seconds)

    # -- request tracing ------------------------------------------------

    def open_trace(self, route: str) -> TraceContext:
        """Build a trace without activating it (the asyncio front activates
        it inside worker threads via ``trace.activate()``)."""
        return TraceContext(route)

    def finish_trace(self, trace: TraceContext, status: int | None = None) -> None:
        """Record the finished request and feed the slow-query log."""
        if status is None:
            status = trace.status if trace.status is not None else 200
        trace.status = status
        elapsed = trace.elapsed()
        self.histogram(REQUEST_SECONDS, (("route", trace.route),)).observe(elapsed)
        self.inc(REQUESTS_TOTAL, (("route", trace.route), ("status", str(status))))
        if elapsed * 1000.0 >= self.slow_query_ms:
            entry = {
                "route": trace.route,
                "status": status,
                "total_ms": elapsed * 1000.0,
                "started_at": trace.started_wall,
                "stages": trace.stage_summary(),
            }
            with self._lock:
                self._slow_queries.append(entry)
                self._slow_query_count += 1
            self.inc(SLOW_QUERIES_TOTAL, (("route", trace.route),))

    @contextlib.contextmanager
    def request(self, route: str) -> Iterator[TraceContext]:
        """Trace one request; reentrant.

        If a trace is already active (the asyncio front opened one before
        dispatching into the sync handler layer) the existing trace is
        yielded untouched so the request is counted exactly once.
        """
        existing = current_trace()
        if existing is not None:
            yield existing
            return
        trace = TraceContext(route)
        try:
            with trace.activate():
                yield trace
        finally:
            self.finish_trace(trace)

    def slow_queries(self) -> list[dict[str, object]]:
        with self._lock:
            return [dict(entry) for entry in self._slow_queries]

    # -- exposition -----------------------------------------------------

    def collect(self, extra: Iterable[Sample] | None = None) -> list[Sample]:
        """Point-in-time samples: built-ins first, then ``extra`` verbatim.

        The registry lock is released before histogram snapshots are taken
        and before any adapter-produced ``extra`` samples are consumed, so
        collection never holds ``obs.registry`` across foreign code.
        """
        with self._lock:
            armed = self.armed
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        samples: list[Sample] = [
            (OBS_ARMED, "gauge", HELP[OBS_ARMED], {}, 1.0 if armed else 0.0)
        ]
        for (name, labels), value in sorted(counters.items()):
            samples.append((name, "counter", HELP.get(name, ""), dict(labels), value))
        for (name, labels), value in sorted(gauges.items()):
            samples.append((name, "gauge", HELP.get(name, ""), dict(labels), value))
        for (name, labels), hist in sorted(histograms.items()):
            samples.append(
                (name, "histogram", HELP.get(name, ""), dict(labels), hist.snapshot())
            )
        if extra is not None:
            samples.extend(extra)
        return samples

    def render(self, extra: Iterable[Sample] | None = None) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        from .expose import render_text

        return render_text(self.collect(extra))

    def snapshot(self, extra: Iterable[Sample] | None = None) -> dict[str, object]:
        """JSON-safe view of every sample plus the slow-query log."""
        metrics: dict[str, dict[str, object]] = {}
        for name, kind, help_text, labels, value in self.collect(extra):
            family = metrics.setdefault(
                name, {"type": kind, "help": help_text, "samples": []}
            )
            family["samples"].append(
                {"labels": dict(labels), "value": _jsonable(value)}
            )
        return {
            "armed": self.armed,
            "slow_query_ms": self.slow_query_ms,
            "metrics": metrics,
            "slow_queries": self.slow_queries(),
        }

    def status(self) -> dict[str, object]:
        """Compact summary for ``/v1/stats`` and diagnostics."""
        with self._lock:
            traced = sum(
                value
                for (name, _labels), value in self._counters.items()
                if name == REQUESTS_TOTAL
            )
            return {
                "armed": self.armed,
                "slow_query_ms": self.slow_query_ms,
                "slow_queries": self._slow_query_count,
                "slow_query_capacity": SLOW_LOG_CAPACITY,
                "traced_requests": int(traced),
            }


def _jsonable(value: object) -> object:
    """Histogram snapshots carry a +Inf bucket bound; make them JSON-safe."""
    if isinstance(value, dict) and "buckets" in value:
        safe = dict(value)
        safe["buckets"] = [
            ["+Inf" if math.isinf(bound) else bound, count]
            for bound, count in value["buckets"]  # type: ignore[union-attr]
        ]
        return safe
    return value


#: The process-global registry every call site guards on.
OBS = MetricsRegistry()


def maybe_arm_from_env(
    environ: Mapping[str, str] | None = None,
    registry: MetricsRegistry | None = None,
) -> bool:
    """Arm the registry when ``CRYPTEXT_OBS=1``.

    Mirrors the sanitizer/fault-injection env hooks: called from CLI
    ``main()`` and test bootstrap only, so importing the library never
    reads the environment.
    """
    env = os.environ if environ is None else environ
    target = OBS if registry is None else registry
    if env.get(ENV_VAR, "").strip() != "1":
        return False
    target.arm()
    return True
