"""Request trace contexts propagated across threads like ``Deadline``.

A :class:`TraceContext` is a lightweight per-request recorder: the route, a
start timestamp, and the ``(stage, seconds)`` pairs appended by spans that
fire while it is active.  Activation follows the exact contract of
``resilience.policies.Deadline``: a ``contextvars.ContextVar`` holds the
current trace, ``activate()`` is a context manager that sets/resets it, and
the asyncio front re-activates the trace inside its worker threads (a
``ContextVar`` does not cross an executor boundary by itself).

The module is dependency-free on purpose — the registry imports it, call
sites import the registry.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Iterator

__all__ = ["TraceContext", "current_trace"]

_CURRENT_TRACE: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "cryptext_trace", default=None
)


class TraceContext:
    """Per-request span recorder; cheap enough to build on every request."""

    __slots__ = ("route", "status", "started", "started_wall", "stages", "_clock")

    def __init__(self, route: str, *, clock=time.perf_counter) -> None:
        self.route = route
        self.status: int | None = None
        self._clock = clock
        self.started = clock()
        self.started_wall = time.time()
        #: ``(stage, seconds)`` pairs in completion order.  Appends are
        #: atomic under the GIL and every append happens while the request
        #: is still in flight, so no lock is needed.
        self.stages: list[tuple[str, float]] = []

    def add_stage(self, stage: str, seconds: float) -> None:
        self.stages.append((stage, seconds))

    def elapsed(self) -> float:
        """Seconds since the trace opened, on the trace's own clock."""
        return self._clock() - self.started

    @contextlib.contextmanager
    def activate(self) -> Iterator["TraceContext"]:
        """Make this trace the current one for the calling thread/task."""
        token = _CURRENT_TRACE.set(self)
        try:
            yield self
        finally:
            _CURRENT_TRACE.reset(token)

    def stage_summary(self) -> list[dict[str, object]]:
        """Per-stage timings for the slow-query log (milliseconds)."""
        return [
            {"stage": stage, "ms": seconds * 1000.0} for stage, seconds in self.stages
        ]


def current_trace() -> TraceContext | None:
    """The trace active in the calling context, if any."""
    return _CURRENT_TRACE.get()
