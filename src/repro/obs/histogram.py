"""Fixed-bucket latency histogram shared by metrics and the sanitizer.

The histogram keeps a per-bucket *sum* alongside the per-bucket count, so
``percentile`` can answer with the mean of the bucket containing the rank
instead of a bare bucket boundary.  Two properties fall out of that choice:

* estimates are always inside the observed ``[min, max]`` range and
  monotone in the quantile (the mean of bucket *i+1* exceeds bucket *i*'s
  upper bound, which bounds bucket *i*'s mean from above), and
* when every sample in the rank's bucket is identical — the common case for
  fake-clock tests — the estimate is *exact*, not a boundary approximation.

Memory is O(buckets) regardless of how many observations arrive, which is
what lets the sanitizer drop its bounded reservoir of raw held-time samples.

The lock is injectable because the lock-order sanitizer itself aggregates
held times through this type: a *tracked* lock here would re-enter the
sanitizer on every release (observe -> release -> note_released -> observe
...), so the sanitizer passes a plain ``threading.Lock`` while the metrics
registry passes ``tracked_lock("obs.metric")``.  This module must therefore
import nothing from ``repro`` — it sits below both the registry and the
sanitizer in the dependency graph.
"""

from __future__ import annotations

import math
import threading
from typing import Sequence

__all__ = ["DEFAULT_BUCKETS", "Histogram"]

#: Default latency bucket upper bounds, in seconds.  Log-spaced from 100us
#: to 10s, the range spanning a cache-hit lookup to a full snapshot rewrite;
#: an implicit +Inf bucket always follows the last bound.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Histogram:
    """Thread-safe fixed-bucket histogram with bucket-mean percentiles."""

    __slots__ = (
        "bounds",
        "_counts",
        "_sums",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_lock",
    )

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        *,
        lock: threading.Lock | None = None,
    ) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram bucket bounds must be strictly increasing")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sums = [0.0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = lock if lock is not None else threading.Lock()

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        index = self._bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self._sums[index] += value
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    def percentile(self, fraction: float) -> float:
        """Estimate the ``fraction`` quantile (0 < fraction <= 1).

        Returns the mean of the bucket containing the rank — exact when the
        bucket holds identical samples, always within ``[min, max]``.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            rank = max(1, math.ceil(fraction * total))
            seen = 0
            for index, bucket_count in enumerate(self._counts):
                seen += bucket_count
                if seen >= rank and bucket_count:
                    # Clamp: repeated-sum rounding can push the bucket mean
                    # one ULP past an observed extreme.
                    mean = self._sums[index] / bucket_count
                    return min(max(mean, self._min), self._max)
        return self._max  # pragma: no cover - unreachable; counts sum to total

    def snapshot(self) -> dict[str, object]:
        """Consistent point-in-time view (cumulative buckets, summary stats)."""
        with self._lock:
            counts = list(self._counts)
            sums = list(self._sums)
            total = self._count
            total_sum = self._sum
            maximum = self._max if total else 0.0
            minimum = self._min if total else 0.0
        cumulative: list[tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.bounds, counts):
            running += bucket_count
            cumulative.append((bound, running))
        cumulative.append((math.inf, running + counts[-1]))

        def estimate(fraction: float) -> float:
            if total == 0:
                return 0.0
            rank = max(1, math.ceil(fraction * total))
            seen = 0
            for index, bucket_count in enumerate(counts):
                seen += bucket_count
                if seen >= rank and bucket_count:
                    mean = sums[index] / bucket_count
                    return min(max(mean, minimum), maximum)
            return maximum

        return {
            "count": total,
            "sum": total_sum,
            "min": minimum,
            "max": maximum,
            "p50": estimate(0.50),
            "p95": estimate(0.95),
            "p99": estimate(0.99),
            "buckets": cumulative,
        }
