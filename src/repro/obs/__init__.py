"""Unified observability: metrics registry, request tracing, exposition.

``OBS`` is the process-global :class:`~repro.obs.registry.MetricsRegistry`;
hot paths guard on ``OBS.armed`` exactly like the fault-injection registry
guards on ``FAULTS.armed``.  See README "Observability" for the metric
catalog, arming, and scrape examples.
"""

from .expose import CONTENT_TYPE, render_text
from .histogram import DEFAULT_BUCKETS, Histogram
from .registry import ENV_VAR, OBS, MetricsRegistry, Sample, maybe_arm_from_env
from .trace import TraceContext, current_trace

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_BUCKETS",
    "ENV_VAR",
    "Histogram",
    "MetricsRegistry",
    "OBS",
    "Sample",
    "TraceContext",
    "current_trace",
    "maybe_arm_from_env",
    "render_text",
]
