"""Read routing across a leader and its follower replicas.

:class:`ReplicaSet` is the policy layer between the service front and the
replicas: reads rotate round-robin across every follower inside the
staleness bound; a follower that has fallen behind (its last successful
tail round is older than ``max_staleness_seconds``) is excluded until it
catches up; with no eligible follower the read lands on the leader itself,
which is always current.  Writes never route here — the service front pins
them to the leader, and the single-writer guard on the WAL directory
enforces it across processes.
"""

from __future__ import annotations

import threading
from typing import Sequence

from ..core.pipeline import CrypText
from .follower import Follower


class ReplicaSet:
    """Round-robin, staleness-aware read router.

    Parameters
    ----------
    leader:
        The writable system; fallback target and source of truth for the
        sequence-number lag report.
    followers:
        The read replicas (may be empty — every read then hits the leader).
    max_staleness_seconds:
        Eligibility bound; defaults to the leader config's value.
    """

    def __init__(
        self,
        leader: CrypText,
        followers: Sequence[Follower] = (),
        max_staleness_seconds: float | None = None,
    ) -> None:
        self.leader = leader
        self.followers = list(followers)
        self.max_staleness_seconds = (
            max_staleness_seconds
            if max_staleness_seconds is not None
            else leader.config.max_staleness_seconds
        )
        self._lock = threading.Lock()
        self._next = 0
        self._routed_to_followers = 0
        self._routed_to_leader = 0

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route(self) -> CrypText:
        """The system the next read should hit (and count it as routed)."""
        with self._lock:
            eligible = [
                follower
                for follower in self.followers
                if follower.is_fresh(self.max_staleness_seconds)
            ]
            if not eligible:
                self._routed_to_leader += 1
                return self.leader
            follower = eligible[self._next % len(eligible)]
            self._next += 1
            self._routed_to_followers += 1
            return follower.system

    # Read endpoints: same signatures as the facade, dispatched per call so
    # consecutive reads spread across the set.
    def look_up(self, query: str, **kwargs):
        """Replicated Look Up (see :meth:`CrypText.look_up`)."""
        return self.route().look_up(query, **kwargs)

    def normalize(self, text: str):
        """Replicated Normalization (see :meth:`CrypText.normalize`)."""
        return self.route().normalize(text)

    def look_up_batch(self, queries: Sequence[str], **kwargs):
        """Replicated batch Look Up — one replica serves the whole batch."""
        return self.route().look_up_batch(queries, **kwargs)

    def normalize_batch(self, texts: Sequence[str]):
        """Replicated batch Normalization — one replica serves the whole batch."""
        return self.route().normalize_batch(texts)

    # ------------------------------------------------------------------ #
    # lifecycle & introspection
    # ------------------------------------------------------------------ #
    def start(self, poll_interval: float | None = None) -> None:
        """Start every follower's background tail."""
        for follower in self.followers:
            follower.start(poll_interval)

    def stop(self) -> None:
        """Stop every follower's background tail."""
        for follower in self.followers:
            follower.stop()

    def close(self) -> None:
        """Stop tails and release every follower's executors."""
        for follower in self.followers:
            follower.close()

    def status(self) -> dict[str, object]:
        """The ``/v1/replication`` payload: per-follower lag + routing counters."""
        wal = self.leader.dictionary.wal
        leader_seq = wal.last_seq if wal is not None else None
        with self._lock:
            routed_followers = self._routed_to_followers
            routed_leader = self._routed_to_leader
        members = []
        for follower in self.followers:
            stats = follower.stats()
            if leader_seq is not None:
                stats["replication_lag_seqs"] = max(
                    0, leader_seq - int(stats["applied_seq"])
                )
            stats["fresh"] = follower.is_fresh(self.max_staleness_seconds)
            members.append(stats)
        return {
            "leader_seq": leader_seq,
            "max_staleness_seconds": self.max_staleness_seconds,
            "followers": members,
            "routed_to_followers": routed_followers,
            "routed_to_leader": routed_leader,
        }
