"""Read routing across a leader and its follower replicas.

:class:`ReplicaSet` is the policy layer between the service front and the
replicas: reads rotate round-robin across every follower that is both
inside the staleness bound *and* admitted by its circuit breaker; a
follower that has fallen behind or is erroring is excluded until it
recovers.  When **no** follower is eligible the configured
``degraded_read_policy`` decides what happens:

- ``"leader"`` (default) — fall back to the always-current leader;
- ``"stale"`` — serve the least-stale follower that has ever synced and
  tag the result so the service can attach a warning header;
- ``"fail_fast"`` — raise :class:`~repro.errors.ReplicasUnavailableError`
  (a 503 at the HTTP layer) so upstream load balancers shed traffic.

Every read routed to a follower feeds its breaker: an unexpected failure
records a breaker failure and retries once on the leader, so one broken
replica costs one extra hop, not an error to the client.  Writes never
route here — the service front pins them to the leader, and the
single-writer guard on the WAL directory enforces it across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, TypeVar

from ..analysis.sanitizer import tracked_lock
from ..config import DEGRADED_READ_POLICIES
from ..core.pipeline import CrypText
from ..errors import ConfigurationError, CrypTextError, ReplicasUnavailableError
from ..obs.registry import OBS
from ..resilience.policies import check_deadline
from .follower import Follower

T = TypeVar("T")


@dataclass(frozen=True)
class RoutedRead:
    """One routing decision.

    ``follower`` is ``None`` for leader reads.  ``degraded`` is ``None``
    for a healthy route, ``"stale"`` when the stale policy served an
    out-of-bound follower, ``"leader_fallback"`` when followers exist but
    the read fell back to the leader.
    """

    system: CrypText
    follower: Optional[Follower] = None
    degraded: Optional[str] = None


@dataclass(frozen=True)
class ReadOutcome:
    """Result of a replicated read plus how it was served."""

    result: object
    degraded: Optional[str] = None
    replica: Optional[str] = None


class ReplicaSet:
    """Round-robin, staleness- and breaker-aware read router.

    Parameters
    ----------
    leader:
        The writable system; fallback target and source of truth for the
        sequence-number lag report.
    followers:
        The read replicas (may be empty — every read then hits the leader).
    max_staleness_seconds:
        Eligibility bound; defaults to the leader config's value.
    degraded_read_policy:
        Override of ``leader.config.degraded_read_policy``.
    supervisor:
        Optional :class:`~repro.resilience.ReplicaSupervisor` whose
        cross-process worker health is surfaced in :meth:`status` (workers
        are separate processes, so they report — not serve — here).
    """

    def __init__(
        self,
        leader: CrypText,
        followers: Sequence[Follower] = (),
        max_staleness_seconds: float | None = None,
        degraded_read_policy: str | None = None,
        supervisor=None,
    ) -> None:
        self.leader = leader
        self.followers = list(followers)
        self.max_staleness_seconds = (
            max_staleness_seconds
            if max_staleness_seconds is not None
            else leader.config.max_staleness_seconds
        )
        policy = (
            degraded_read_policy
            if degraded_read_policy is not None
            else leader.config.degraded_read_policy
        )
        if policy not in DEGRADED_READ_POLICIES:
            raise ConfigurationError(
                f"degraded_read_policy must be one of {DEGRADED_READ_POLICIES}, "
                f"got {policy!r}"
            )
        self.degraded_read_policy = policy
        self.supervisor = supervisor
        self._lock = tracked_lock("replica.route")
        self._next = 0
        self._routed_to_followers = 0
        self._routed_to_leader = 0
        self._stale_reads = 0
        self._failed_fast = 0
        self._read_failovers = 0

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route_read(self) -> RoutedRead:
        """Decide where the next read goes (and count it).

        Raises :class:`ReplicasUnavailableError` under the fail-fast
        policy when no follower is eligible.
        """
        if OBS.armed:
            with OBS.span("replica.route"):
                return self._route_read()
        return self._route_read()

    def _route_read(self) -> RoutedRead:
        with self._lock:
            eligible = [
                follower
                for follower in self.followers
                if follower.is_fresh(self.max_staleness_seconds)
                and follower.breaker.available()
            ]
            # Walk the rotation until a breaker admits the call — available()
            # above is a non-mutating scan, allow() books the probe slot.
            for offset in range(len(eligible)):
                follower = eligible[(self._next + offset) % len(eligible)]
                if follower.breaker.allow():
                    self._next += offset + 1
                    self._routed_to_followers += 1
                    return RoutedRead(follower.system, follower)
            if not self.followers:
                self._routed_to_leader += 1
                return RoutedRead(self.leader)
            # Degraded: followers exist, none is eligible.
            if self.degraded_read_policy == "fail_fast":
                self._failed_fast += 1
                raise ReplicasUnavailableError(
                    f"no healthy replica among {len(self.followers)} follower(s) "
                    "and degraded_read_policy is 'fail_fast'"
                )
            if self.degraded_read_policy == "stale":
                # Any follower that has ever completed a sync round has real
                # (if old) data — snapshot-hydrated or replayed from seq 0.
                stale = [
                    follower
                    for follower in self.followers
                    if follower.lag_seconds() is not None
                    and follower.breaker.available()
                ]
                if stale:
                    follower = min(stale, key=lambda f: f.lag_seconds() or 0.0)
                    if follower.breaker.allow():
                        self._stale_reads += 1
                        return RoutedRead(follower.system, follower, degraded="stale")
            self._routed_to_leader += 1
            return RoutedRead(self.leader, degraded="leader_fallback")

    def route(self) -> CrypText:
        """The system the next read should hit (compatibility shim)."""
        return self.route_read().system

    def execute(self, compute: Callable[[CrypText], T]) -> ReadOutcome:
        """Run one read through routing, breaker accounting, and failover.

        ``compute`` receives the chosen system.  Application-level errors
        (:class:`CrypTextError`) propagate untouched — they say nothing
        about replica health.  Any other exception from a follower records
        a breaker failure and retries the read once on the leader.
        """
        check_deadline("replicated read")
        routed = self.route_read()
        follower = routed.follower
        try:
            result = compute(routed.system)
        except CrypTextError:
            raise
        except Exception:
            if follower is None:
                raise
            follower.breaker.record_failure()
            with self._lock:
                self._read_failovers += 1
            result = compute(self.leader)
            return ReadOutcome(result, degraded="leader_fallback")
        if follower is not None:
            follower.breaker.record_success()
        return ReadOutcome(
            result,
            degraded=routed.degraded,
            replica=follower.name if follower is not None else None,
        )

    # Read endpoints: same signatures as the facade, dispatched per call so
    # consecutive reads spread across the set.
    def look_up(self, query: str, **kwargs):
        """Replicated Look Up (see :meth:`CrypText.look_up`)."""
        return self.execute(lambda system: system.look_up(query, **kwargs)).result

    def normalize(self, text: str):
        """Replicated Normalization (see :meth:`CrypText.normalize`)."""
        return self.execute(lambda system: system.normalize(text)).result

    def look_up_batch(self, queries: Sequence[str], **kwargs):
        """Replicated batch Look Up — one replica serves the whole batch."""
        return self.execute(lambda system: system.look_up_batch(queries, **kwargs)).result

    def normalize_batch(self, texts: Sequence[str]):
        """Replicated batch Normalization — one replica serves the whole batch."""
        return self.execute(lambda system: system.normalize_batch(texts)).result

    # ------------------------------------------------------------------ #
    # lifecycle & introspection
    # ------------------------------------------------------------------ #
    def start(self, poll_interval: float | None = None) -> None:
        """Start every follower's background tail."""
        for follower in self.followers:
            follower.start(poll_interval)

    def stop(self) -> None:
        """Stop every follower's background tail."""
        for follower in self.followers:
            follower.stop()

    def close(self) -> None:
        """Stop tails and release every follower's executors."""
        for follower in self.followers:
            follower.close()

    def status(self) -> dict[str, object]:
        """The ``/v1/replication`` payload: per-follower lag + routing counters."""
        wal = self.leader.dictionary.wal
        leader_seq = wal.last_seq if wal is not None else None
        with self._lock:
            routed_followers = self._routed_to_followers
            routed_leader = self._routed_to_leader
            stale_reads = self._stale_reads
            failed_fast = self._failed_fast
            read_failovers = self._read_failovers
        members = []
        for follower in self.followers:
            stats = follower.stats()
            if leader_seq is not None:
                stats["replication_lag_seqs"] = max(
                    0, leader_seq - int(stats["applied_seq"])
                )
            stats["fresh"] = follower.is_fresh(self.max_staleness_seconds)
            members.append(stats)
        payload: dict[str, object] = {
            "leader_seq": leader_seq,
            "max_staleness_seconds": self.max_staleness_seconds,
            "degraded_read_policy": self.degraded_read_policy,
            "followers": members,
            "routed_to_followers": routed_followers,
            "routed_to_leader": routed_leader,
            "stale_reads": stale_reads,
            "failed_fast": failed_fast,
            "read_failovers": read_failovers,
        }
        if self.supervisor is not None:
            payload["supervisor"] = self.supervisor.status()
        return payload
