"""Follower replicas: hydrate from the snapshot chain, tail the leader's WAL.

A :class:`Follower` owns a complete read-only :class:`~repro.core.pipeline.CrypText`
system of its own — documents, compiled tries, batch shards, query cache —
reconstructed from the leader's persisted artifacts and kept fresh by
polling the journal:

1. **hydrate** — resolve the leader's base + delta chain
   (:func:`~repro.wal.delta.resolve_snapshot_chain`) and install the merged
   snapshot; the chain tip's recorded ``wal_seq`` becomes the applied
   position.  With no usable chain the follower starts empty at position 0
   and replays the journal from its beginning.
2. **catch up / poll** — read every complete record past the applied
   position (:class:`~repro.replication.tailer.WalTail`) and apply it
   through the same replay core crash recovery uses
   (:meth:`~repro.core.dictionary.PerturbationDictionary.apply_wal_record`),
   invalidating exactly the caches whose sound buckets changed.  Applying
   is idempotent by sequence number: a record at or below the applied
   position is never applied twice, so a follower killed mid-catch-up
   simply re-tails.
3. **degrade gracefully** — when the leader truncates or supersedes
   segments under the tail (a gap), the follower re-hydrates from the
   latest chain, which by the truncation contract covers everything the
   deleted segments held.

The follower never journals: its dictionary has no WAL attached, and the
replay core suppresses journaling anyway.  It never writes to the leader's
directories either — hydration and tailing are strictly read-only, which is
what lets N followers share one leader's disk artifacts without any
coordination beyond the single-writer guard on the leader itself.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Callable

from ..analysis.sanitizer import tracked_rlock
from ..config import CrypTextConfig, DEFAULT_CONFIG
from ..core.pipeline import CrypText
from ..errors import SnapshotError
from ..obs.registry import OBS
from ..resilience.faults import FAULTS
from ..resilience.policies import CircuitBreaker, RetryPolicy
from ..storage.snapshot import MappedSnapshot
from ..wal.delta import resolve_snapshot_chain
from ..wal.log import resolve_wal_directory
from .tailer import WalTail


class Follower:
    """One read replica tailing a leader's snapshot directory + WAL.

    Parameters
    ----------
    snapshot_dir:
        The leader's snapshot directory (base + deltas live here).
    wal_dir:
        The leader's journal; resolved like every other entry point
        (explicit beats ``config.wal_dir`` beats ``<snapshot_dir>/wal``).
    config:
        Configuration for the replica's own system (and the source of
        ``replica_poll_interval`` / ``max_staleness_seconds`` defaults).
    name:
        Identifier used in stats and routing output.
    clock:
        Monotonic-seconds source, injectable for staleness tests.
    record_applied_seqs:
        Keep the set of every sequence number ever applied (the
        concurrency harness asserts no loss and no duplication with it).
        Off by default — it grows without bound.
    """

    def __init__(
        self,
        snapshot_dir: str | Path,
        wal_dir: str | Path | None = None,
        config: CrypTextConfig = DEFAULT_CONFIG,
        name: str = "follower",
        clock: Callable[[], float] = time.monotonic,
        record_applied_seqs: bool = False,
    ) -> None:
        self.name = name
        self.config = config
        self.snapshot_dir = Path(snapshot_dir)
        self.wal_dir = resolve_wal_directory(config, self.snapshot_dir, wal_dir)
        self.system = CrypText.empty(config=config, seed_lexicon=False)
        self._tail = WalTail(self.wal_dir)
        self._clock = clock
        self._lock = tracked_rlock("follower.state")
        self._applied_seq = 0
        self._applied_records = 0
        self._applied_seq_log: set[int] | None = set() if record_applied_seqs else None
        self._skipped_records = 0
        self._rehydrations = 0
        self._hydrated = False
        self._mapped: "MappedSnapshot | None" = None
        self._last_sync: float | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._closed = False
        # Resilience: transient tail-read retries, per-replica breaker,
        # bounded records-per-poll backpressure, poll-failure accounting.
        self.breaker = CircuitBreaker(
            config.breaker_failure_threshold,
            config.breaker_recovery_seconds,
            clock=clock,
            name=name,
        )
        self._retry = RetryPolicy(
            attempts=config.retry_attempts,
            base_delay=config.retry_base_delay,
            retry_on=(OSError,),
        )
        self._catchup_batch = config.replica_catchup_batch
        self._polls = 0
        self._poll_errors = 0
        self._consecutive_poll_failures = 0
        self._last_poll_error: str | None = None
        self._throttled_polls = 0

    # ------------------------------------------------------------------ #
    # hydration & polling
    # ------------------------------------------------------------------ #
    @property
    def applied_seq(self) -> int:
        """Position of the last WAL record folded into this replica."""
        with self._lock:
            return self._applied_seq

    @property
    def applied_seqs(self) -> frozenset[int]:
        """Every sequence number ever applied (requires ``record_applied_seqs``)."""
        with self._lock:
            return frozenset(self._applied_seq_log or ())

    def hydrate(self) -> bool:
        """(Re)install the leader's snapshot chain; returns whether one loaded.

        Safe to call on a live replica — a re-hydration replaces the whole
        state and moves the applied position to the chain tip, after which
        polling resumes from there.  With no usable chain the replica keeps
        its current state (initially empty) and position.

        A v2 sharded base with no pending deltas is opened through ``mmap``
        (``prefer_mapped``): trie rows materialize per bucket on first
        query, and every follower of the same snapshot version in the
        process shares the same mapped pages instead of a private heap
        copy.  The replica holds the mapping for as long as that hydration
        is live (``mapped_snapshot``).
        """
        with self._lock:
            try:
                chain = resolve_snapshot_chain(
                    self.snapshot_dir, strict=False, prefer_mapped=True
                )
            except SnapshotError:
                # A broken delta link: the base alone may still be stale vs.
                # our position; replaying the WAL from 0 over the base risks
                # double-apply.  Treat as unusable and keep the current state.
                chain = None
            if chain is None:
                return False
            self.system.dictionary.hydrate_snapshot(chain.snapshot)
            if self.system.cache is not None:
                self.system.cache.clear()
            engine = self.system._batch_engine
            if engine is not None:
                engine.memo.clear()
                engine.warm_from_snapshot(chain.snapshot)
            self._applied_seq = chain.snapshot.wal_seq
            self._hydrated = True
            self._mapped = chain.mapped
            return True

    def poll(self) -> int:
        """One tail round: apply every new complete record; returns how many.

        A detected gap triggers one re-hydration attempt, then a re-tail
        from the new position inside the same call.  Raises nothing on a
        quiet log — zero is a normal return.

        At most ``config.replica_catchup_batch`` records are applied per
        call (backpressure: a follower many segments behind catches up in
        bounded slices instead of monopolizing its lock and the leader's
        disk).  Failures are counted, feed the replica's circuit breaker,
        and re-raise; use :meth:`poll_safely` where an exception must not
        escape (the background tail thread does).
        """
        if OBS.armed:
            with OBS.span("follower.poll"):
                return self._poll_round()
        return self._poll_round()

    def _poll_round(self) -> int:
        with self._lock:
            if self._closed:
                return 0
            self._polls += 1
            try:
                if FAULTS.armed:
                    FAULTS.hit("follower.poll")
                applied = self._poll_locked()
            except Exception as exc:
                self._poll_errors += 1
                self._consecutive_poll_failures += 1
                self._last_poll_error = f"{type(exc).__name__}: {exc}"
                self.breaker.record_failure()
                raise
            self._consecutive_poll_failures = 0
            self.breaker.record_success()
            return applied

    def _read_tail(self, after_seq: int):
        """Tail read with transient-IO retries and the catch-up bound."""
        return self._retry.call(self._tail.read_after, after_seq, self._catchup_batch)

    def _poll_locked(self) -> int:
        batch = self._read_tail(self._applied_seq)
        if batch.gap:
            self._rehydrations += 1
            if self.hydrate():
                batch = self._read_tail(self._applied_seq)
            if batch.gap:
                # Still unreachable (no usable chain yet — e.g. the
                # leader is mid-save).  Stay stale; the routing layer
                # will exclude us until a later poll succeeds.
                return 0
        if batch.truncated:
            self._throttled_polls += 1
        changed: set[tuple[int, str]] = set()
        applied = 0
        for record in batch.records:
            if record.seq <= self._applied_seq:
                continue
            if self.system.dictionary.apply_wal_record(record, changed_keys=changed):
                self._applied_records += 1
            else:
                self._skipped_records += 1
            # Unknown operations advance the position too — they were
            # journaled by a newer writer and will be equally unknown
            # on every future poll.
            self._applied_seq = record.seq
            if self._applied_seq_log is not None:
                self._applied_seq_log.add(record.seq)
            applied += 1
        if changed:
            self.system.note_external_changes(changed)
        self._last_sync = self._clock()
        return applied

    def poll_safely(self) -> int | None:
        """:meth:`poll`, but swallow the exception (it is already counted).

        Returns the applied count, or ``None`` when the round failed.
        """
        try:
            return self.poll()
        except Exception:  # lint: allow=swallowed-exception (poll() already counted and recorded it)
            return None

    def catch_up(self) -> int:
        """Hydrate (once, if never done) and poll until the tail runs dry.

        Each poll applies a bounded slice and releases the replica's lock,
        so concurrent reads interleave with a long catch-up instead of
        stalling behind it.
        """
        if OBS.armed:
            with OBS.span("follower.catchup"):
                return self._catch_up()
        return self._catch_up()

    def _catch_up(self) -> int:
        with self._lock:
            if not self._hydrated:
                self.hydrate()
        total = 0
        while True:
            applied = self.poll()
            total += applied
            if applied == 0:
                return total
            time.sleep(0)  # yield between slices: readers and the leader's disk go first

    # ------------------------------------------------------------------ #
    # background tailing
    # ------------------------------------------------------------------ #
    def start(self, poll_interval: float | None = None) -> None:
        """Tail continuously on a daemon thread every ``poll_interval`` seconds.

        The thread never dies to an exception: a failing poll is counted
        (``stats()["poll_errors"]``), feeds the circuit breaker, and backs
        the loop off exponentially (capped) until a round succeeds again —
        a transient disk error must not leave a forever-stale replica that
        still looks healthy.
        """
        interval = (
            poll_interval if poll_interval is not None else self.config.replica_poll_interval
        )
        if interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {interval!r}")
        if self._thread is not None:
            return
        self._stop.clear()
        backoff_cap = max(2.0, interval * 8)

        def run() -> None:
            while not self._stop.is_set():
                if self.poll_safely() is not None:
                    wait = interval
                else:
                    with self._lock:
                        failures = self._consecutive_poll_failures
                    wait = min(interval * (2 ** min(failures, 10)), backoff_cap)
                self._stop.wait(wait)

        self._thread = threading.Thread(
            target=run, name=f"cryptext-{self.name}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background tail (the replica keeps serving reads)."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join()

    def close(self) -> None:
        """Stop tailing and release the replica's own executors."""
        self.stop()
        with self._lock:
            self._closed = True
            engine = self.system._batch_engine
        if engine is not None:
            engine.close()

    # ------------------------------------------------------------------ #
    # staleness & stats
    # ------------------------------------------------------------------ #
    def lag_seconds(self) -> float | None:
        """Seconds since the last successful tail round (``None``: never)."""
        with self._lock:
            if self._last_sync is None:
                return None
            return max(0.0, self._clock() - self._last_sync)

    def is_fresh(self, max_staleness_seconds: float | None = None) -> bool:
        """Whether this replica is inside the staleness bound."""
        bound = (
            max_staleness_seconds
            if max_staleness_seconds is not None
            else self.config.max_staleness_seconds
        )
        lag = self.lag_seconds()
        return lag is not None and lag <= bound

    @property
    def hydrated(self) -> bool:
        """Whether a snapshot chain has ever been installed."""
        with self._lock:
            return self._hydrated

    @property
    def mapped_snapshot(self) -> "MappedSnapshot | None":
        """The ``mmap``-backed base of the current hydration, if any.

        ``None`` when the last hydration read a v1 file, merged deltas, or
        nothing has hydrated yet.  Two followers of the same snapshot
        version return views over the *same* shard readers — the
        page-sharing property the replication tests pin down.
        """
        with self._lock:
            return self._mapped

    def stats(self) -> dict[str, object]:
        """Replication counters (the ``/v1/replication`` per-follower view)."""
        with self._lock:
            lag = None if self._last_sync is None else max(0.0, self._clock() - self._last_sync)
            return {
                "name": self.name,
                "applied_seq": self._applied_seq,
                "applied_records": self._applied_records,
                "skipped_records": self._skipped_records,
                "rehydrations": self._rehydrations,
                "hydrated": self._hydrated,
                "mapped_bytes": 0 if self._mapped is None else self._mapped.mapped_bytes,
                "replication_lag_seconds": lag,
                "tailing": self._thread is not None,
                "tokens": len(self.system.dictionary),
                "polls": self._polls,
                "poll_errors": self._poll_errors,
                "consecutive_poll_failures": self._consecutive_poll_failures,
                "last_poll_error": self._last_poll_error,
                "throttled_polls": self._throttled_polls,
                "catchup_batch": self._catchup_batch,
                "breaker": self.breaker.status(),
            }
