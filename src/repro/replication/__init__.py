"""Single-writer / many-reader replication over the durability subsystem.

The PR 5 change log is already a total-ordered, checksummed, idempotent
replication log; this package puts read scaling on top of it:

* :mod:`repro.replication.tailer` — **read-only WAL tailing**
  (:class:`WalTail`): decode the leader's segments without ever repairing,
  truncating, or creating anything, detecting torn tails and
  truncated-under-us gaps instead;
* :mod:`repro.replication.follower` — a :class:`Follower` replica that
  hydrates from the snapshot/delta chain, continuously applies the journal
  tail, re-hydrates when the leader truncates history under it, and
  exposes its replication lag;
* :mod:`repro.replication.replica_set` — a :class:`ReplicaSet` router
  fanning reads round-robin across the followers inside the staleness
  bound **and** admitted by their circuit breakers, degrading per
  ``config.degraded_read_policy`` (leader fallback / serve-stale-with-
  warning / fail-fast 503) when none is eligible;
* the **single-writer guard** lives with the log itself
  (:class:`repro.wal.log.SingleWriterGuard`) — an ``flock`` on the WAL
  directory so a second writer fails loudly instead of corrupting seqs.

The asyncio service front (:mod:`repro.api.async_service`) dispatches read
endpoints to the ReplicaSet via a thread pool and pins writes to the
leader.  Cross-process followers — `repro replica run --follow-only`
workers under a :class:`~repro.resilience.ReplicaSupervisor` — live in
:mod:`repro.resilience.supervisor`; the tailer is file-based, so they
need nothing from the leader's process but its directories.
"""

from .follower import Follower
from .replica_set import ReadOutcome, ReplicaSet, RoutedRead
from .tailer import TailBatch, WalTail

__all__ = [
    "Follower",
    "ReadOutcome",
    "ReplicaSet",
    "RoutedRead",
    "TailBatch",
    "WalTail",
]
