"""Read-only WAL tailing for follower replicas.

A follower consumes the leader's journal *without* opening a
:class:`~repro.wal.log.ChangeLog` on it: that constructor repairs torn
tails, creates directories, and keeps an append handle — all writer
privileges a replica must never exercise (two processes "repairing" the
same tail race each other into corruption).  :class:`WalTail` is the
reader-side counterpart: it globs the segment files fresh on every read,
decodes complete frames only, and reports — rather than fixes — anything
unusual.

The segment naming convention (``wal-<first_seq:020d>.seg``) lets the tail
skip whole files without decoding them: segment *i* covers sequence numbers
``[first_i, first_{i+1} - 1]``, so any segment whose successor starts at or
below ``after_seq + 1`` holds nothing new.

Two race conditions with a live leader are normal and handled:

* **torn tail while tailing** — the leader is mid-append when we read; the
  cut-off frame fails to decode and the batch simply ends at the last
  complete record.  The next poll picks up the finished frame.
* **truncation / reset under us** — maintenance deleted segments we were
  about to read, or superseded the whole journal.  If the surviving files
  no longer cover ``after_seq + 1`` the batch reports a **gap**: the
  follower cannot catch up from the log alone and must re-hydrate from the
  latest snapshot chain (which, by the truncation contract, covers at
  least everything the deleted segments held).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..resilience.faults import FAULTS
from ..wal.log import WAL_SEGMENT_GLOB, WalRecord, decode_segment


@dataclass(frozen=True)
class TailBatch:
    """The outcome of one tail read.

    ``records`` is the contiguous run of new records starting at
    ``after_seq + 1`` (possibly empty); ``gap`` means the journal no longer
    reaches back to ``after_seq + 1`` at all — the caller must re-hydrate
    from the snapshot chain before tailing again.
    """

    records: tuple[WalRecord, ...] = ()
    gap: bool = False
    #: True when a ``limit`` stopped the read early — more contiguous
    #: records were available on disk than the caller was willing to take.
    truncated: bool = False


class WalTail:
    """Reader-side view of a (possibly live) WAL directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def _segments(self) -> list[tuple[int, Path]]:
        """``(first_seq, path)`` pairs in sequence order.

        Files that do not follow the naming convention are ignored — a
        writer-side :class:`ChangeLog` refuses to open such a directory,
        but a tail has no business policing files it will never touch
        (the ``wal.lock`` guard file lives here too).
        """
        found: list[tuple[int, Path]] = []
        if self.directory.is_dir():
            for path in self.directory.glob(WAL_SEGMENT_GLOB):
                stem = path.stem
                try:
                    found.append((int(stem.split("-", 1)[1]), path))
                except (IndexError, ValueError):
                    continue
        found.sort()
        return found

    def read_after(self, after_seq: int, limit: Optional[int] = None) -> TailBatch:
        """Every complete record with ``seq`` contiguously above ``after_seq``.

        Only the gapless run starting at ``after_seq + 1`` is returned; a
        jump mid-stream (an interior tear, or a rotation racing the read)
        ends the batch — the suffix is retried on the next poll once the
        leader has repaired or finished writing.

        ``limit`` bounds the batch (catch-up backpressure): at most that
        many records are collected, and the batch is marked ``truncated``
        so the caller knows to poll again immediately rather than wait a
        full interval.
        """
        if FAULTS.armed:
            FAULTS.hit("tailer.read")
        segments = self._segments()
        if not segments:
            # Nothing on disk: a leader that has not journaled yet (or a
            # directory mid-supersede).  Not a gap — there is no evidence
            # history was lost, so the follower just keeps waiting.
            return TailBatch()
        if segments[0][0] > after_seq + 1:
            # Truncation or reset consumed the records we still need; the
            # snapshot chain covers them now.
            return TailBatch(gap=True)
        collected: list[WalRecord] = []
        expected = after_seq + 1
        truncated = False
        for index, (first_seq, path) in enumerate(segments):
            next_first = segments[index + 1][0] if index + 1 < len(segments) else None
            if next_first is not None and next_first <= expected:
                continue  # fully covered by what we already applied
            try:
                data = path.read_bytes()
            except OSError:
                break  # unlinked by truncation mid-read; retry next poll
            records, _ = decode_segment(data)
            jumped = False
            for record in records:
                if record.seq < expected:
                    continue
                if record.seq > expected:
                    jumped = True
                    break
                if limit is not None and len(collected) >= limit:
                    truncated = True
                    break
                collected.append(record)
                expected += 1
            if jumped or truncated:
                break
        return TailBatch(records=tuple(collected), truncated=truncated)
