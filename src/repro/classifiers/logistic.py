"""Multinomial logistic regression over sparse n-gram features.

A second, discriminative model family for the simulated APIs (the paper
probes three different services; using two different model families plus the
rule-based sentiment analyzer keeps the robustness benchmark from measuring a
single model's quirks).  Implemented with NumPy mini-batch gradient descent
over a dense matrix materialized from the sparse feature vectors.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from ..errors import ClassifierError
from .features import FeatureVector

Label = Hashable


class LogisticRegressionClassifier:
    """Softmax regression trained with mini-batch gradient descent.

    Parameters
    ----------
    learning_rate:
        Gradient-descent step size.
    epochs:
        Number of passes over the training data.
    batch_size:
        Mini-batch size.
    l2:
        L2 regularization strength.
    seed:
        Seed of the shuffling RNG (training is deterministic given the seed).
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        epochs: int = 30,
        batch_size: int = 32,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if learning_rate <= 0:
            raise ClassifierError(f"learning_rate must be positive, got {learning_rate}")
        if epochs < 1:
            raise ClassifierError(f"epochs must be >= 1, got {epochs}")
        if batch_size < 1:
            raise ClassifierError(f"batch_size must be >= 1, got {batch_size}")
        if l2 < 0:
            raise ClassifierError(f"l2 must be >= 0, got {l2}")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self._feature_index: dict[str, int] = {}
        self._classes: tuple[Label, ...] = ()
        self._weights: np.ndarray | None = None
        self._bias: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def _build_feature_index(self, vectors: Sequence[FeatureVector]) -> None:
        names = sorted({name for vector in vectors for name in vector})
        self._feature_index = {name: index for index, name in enumerate(names)}

    def _densify(self, vectors: Sequence[FeatureVector]) -> np.ndarray:
        matrix = np.zeros((len(vectors), len(self._feature_index)), dtype=np.float64)
        for row, vector in enumerate(vectors):
            for name, value in vector.items():
                column = self._feature_index.get(name)
                if column is not None:
                    matrix[row, column] = value
        # L2-normalize rows so documents of different lengths are comparable.
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return matrix / norms

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exponentials = np.exp(shifted)
        return exponentials / exponentials.sum(axis=1, keepdims=True)

    def fit(
        self, vectors: Sequence[FeatureVector], labels: Sequence[Label]
    ) -> "LogisticRegressionClassifier":
        """Train the softmax weights."""
        if len(vectors) != len(labels):
            raise ClassifierError(f"got {len(vectors)} vectors but {len(labels)} labels")
        if not vectors:
            raise ClassifierError("cannot fit on an empty training set")
        self._build_feature_index(vectors)
        self._classes = tuple(sorted(set(labels), key=str))
        class_index = {label: index for index, label in enumerate(self._classes)}
        features = self._densify(vectors)
        targets = np.array([class_index[label] for label in labels], dtype=np.int64)
        num_samples, num_features = features.shape
        num_classes = len(self._classes)
        rng = np.random.default_rng(self.seed)
        self._weights = np.zeros((num_features, num_classes), dtype=np.float64)
        self._bias = np.zeros(num_classes, dtype=np.float64)
        one_hot = np.eye(num_classes)[targets]
        for _epoch in range(self.epochs):
            order = rng.permutation(num_samples)
            for start in range(0, num_samples, self.batch_size):
                batch = order[start : start + self.batch_size]
                batch_features = features[batch]
                batch_targets = one_hot[batch]
                logits = batch_features @ self._weights + self._bias
                probabilities = self._softmax(logits)
                error = probabilities - batch_targets
                gradient_weights = (
                    batch_features.T @ error / len(batch) + self.l2 * self._weights
                )
                gradient_bias = error.mean(axis=0)
                self._weights -= self.learning_rate * gradient_weights
                self._bias -= self.learning_rate * gradient_bias
        return self

    @property
    def classes(self) -> tuple[Label, ...]:
        """Class labels seen at training time."""
        return self._classes

    def _require_fitted(self) -> None:
        if self._weights is None or self._bias is None:
            raise ClassifierError("the classifier has not been fitted yet")

    # ------------------------------------------------------------------ #
    def predict_proba(self, vector: FeatureVector) -> dict[Label, float]:
        """Class probabilities for one sparse vector."""
        self._require_fitted()
        features = self._densify([vector])
        probabilities = self._softmax(features @ self._weights + self._bias)[0]
        return {label: float(probabilities[index]) for index, label in enumerate(self._classes)}

    def predict(self, vector: FeatureVector) -> Label:
        """Most probable class for one sparse vector."""
        probabilities = self.predict_proba(vector)
        return max(probabilities.items(), key=lambda item: (item[1], str(item[0])))[0]

    def predict_many(self, vectors: Sequence[FeatureVector]) -> list[Label]:
        """Predict a batch of sparse vectors."""
        self._require_fitted()
        features = self._densify(vectors)
        probabilities = self._softmax(features @ self._weights + self._bias)
        indices = probabilities.argmax(axis=1)
        return [self._classes[index] for index in indices]

    def score(self, vectors: Sequence[FeatureVector], labels: Sequence[Label]) -> float:
        """Accuracy on a labelled set."""
        if len(vectors) != len(labels):
            raise ClassifierError(f"got {len(vectors)} vectors but {len(labels)} labels")
        if not vectors:
            raise ClassifierError("cannot score an empty evaluation set")
        predictions = self.predict_many(vectors)
        correct = sum(
            1 for prediction, label in zip(predictions, labels) if prediction == label
        )
        return correct / len(labels)
