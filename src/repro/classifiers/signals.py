"""Perturbation-presence signals for downstream ML pipelines.

Paper §III-C (second Normalization use case): "the presence of perturbations
within a sentence can also inform potential adversarial behaviors from its
writer, especially those offensive or controversial perturbations ... as
part of a ML pipeline."

:class:`PerturbationSignalExtractor` converts a Normalization result into a
small, interpretable feature dictionary (how many tokens were perturbed,
which strategies were used, whether sensitive vocabulary was hidden), in the
same sparse ``{feature: value}`` format the n-gram vectorizer produces so the
two can be merged into one classifier input, and
:func:`combine_feature_vectors` does that merge.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.categories import HUMAN_DISTINCTIVE_CATEGORIES
from ..core.normalizer import NormalizationResult, Normalizer
from ..text.tokenizer import Tokenizer
from .features import FeatureVector


class PerturbationSignalExtractor:
    """Extracts perturbation-evidence features from texts.

    Parameters
    ----------
    normalizer:
        The CrypText normalizer used to detect (and undo) perturbations.
    prefix:
        Feature-name prefix, kept distinct from the n-gram features so the
        two vocabularies never collide.
    """

    def __init__(self, normalizer: Normalizer, prefix: str = "sig") -> None:
        self.normalizer = normalizer
        self.prefix = prefix
        self._tokenizer = Tokenizer()

    # ------------------------------------------------------------------ #
    def features_from_result(self, result: NormalizationResult) -> FeatureVector:
        """Feature dictionary for an already-computed normalization result."""
        corrections = result.perturbed_corrections
        num_tokens = max(len(self._tokenizer.word_tokens(result.original_text)), 1)
        features: FeatureVector = {
            f"{self.prefix}:num_perturbations": float(len(corrections)),
            f"{self.prefix}:perturbation_ratio": len(corrections) / num_tokens,
        }
        if not corrections:
            features[f"{self.prefix}:clean"] = 1.0
            return features
        sensitive = 0
        human_distinctive = 0
        for correction in corrections:
            features[f"{self.prefix}:category:{correction.category.value}"] = (
                features.get(f"{self.prefix}:category:{correction.category.value}", 0.0)
                + 1.0
            )
            if correction.category in HUMAN_DISTINCTIVE_CATEGORIES:
                human_distinctive += 1
            if self.normalizer.lexicon.is_word(correction.corrected):
                sensitive += 1
        features[f"{self.prefix}:num_sensitive_restored"] = float(sensitive)
        features[f"{self.prefix}:human_distinctive"] = float(human_distinctive)
        return features

    def extract(self, text: str) -> FeatureVector:
        """Feature dictionary for a raw text (runs Normalization internally)."""
        return self.features_from_result(self.normalizer.normalize(text))

    def extract_many(self, texts: Sequence[str]) -> list[FeatureVector]:
        """Features for a batch of texts."""
        return [self.extract(text) for text in texts]


def combine_feature_vectors(
    base: Mapping[str, float], extra: Mapping[str, float]
) -> FeatureVector:
    """Merge two sparse feature vectors (values of shared keys are summed)."""
    combined: FeatureVector = dict(base)
    for name, value in extra.items():
        combined[name] = combined.get(name, 0.0) + value
    return combined
