"""Simulated third-party NLP APIs and the robustness evaluation harness.

Figure 4 of the paper measures the accuracy of three Google Cloud services —
the Perspective toxic-content detector, the sentiment API, and the text
categorization API — on inputs perturbed by CrypText at increasing
manipulation ratios, and finds that all three degrade (Perspective loses
almost 10 accuracy points at a 25% ratio).

Those services are black boxes and unreachable offline.  This module builds
the equivalent experimental subjects: each ``Simulated*API`` wraps a
from-scratch classifier trained on *clean* text only (mirroring "models
often trained only on clean English corpus"), and exposes an ``analyze``
method shaped like the corresponding cloud response plus a ``predict_label``
method used for accuracy measurement.  :class:`RobustnessEvaluator` then
sweeps the perturbation ratio and reports the accuracy curve — the data
behind Figure 4 and behind the "ML benchmark page" the system maintains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from ..errors import ClassifierError
from ..metrics import accuracy
from .features import NgramVectorizer
from .logistic import LogisticRegressionClassifier
from .naive_bayes import MultinomialNaiveBayes


@dataclass(frozen=True)
class APIPrediction:
    """A single API response: predicted label plus per-label scores."""

    label: str
    scores: dict[str, float]
    raw: dict[str, object]

    def to_dict(self) -> dict[str, object]:
        """Serialize for the benchmark page export."""
        return {"label": self.label, "scores": dict(self.scores), "raw": dict(self.raw)}


class _TextClassifierAPI:
    """Shared plumbing of the simulated APIs: vectorizer + classifier."""

    #: Human-readable service name (shown in Figure-4-style outputs).
    service_name: str = "api"

    def __init__(
        self,
        vectorizer: NgramVectorizer | None = None,
        classifier: MultinomialNaiveBayes | LogisticRegressionClassifier | None = None,
    ) -> None:
        self.vectorizer = vectorizer if vectorizer is not None else NgramVectorizer()
        self.classifier = (
            classifier if classifier is not None else MultinomialNaiveBayes()
        )
        self._trained = False

    def train(self, texts: Sequence[str], labels: Sequence[str]) -> "_TextClassifierAPI":
        """Fit the vectorizer and classifier on clean labelled text."""
        if len(texts) != len(labels):
            raise ClassifierError(f"got {len(texts)} texts but {len(labels)} labels")
        vectors = self.vectorizer.fit_transform(texts)
        self.classifier.fit(vectors, labels)
        self._trained = True
        return self

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`train` has been called."""
        return self._trained

    def _require_trained(self) -> None:
        if not self._trained:
            raise ClassifierError(f"{self.service_name} has not been trained yet")

    def predict_label(self, text: str) -> str:
        """Predicted label of ``text``."""
        self._require_trained()
        vector = self.vectorizer.transform_one(text)
        return str(self.classifier.predict(vector))

    def predict_scores(self, text: str) -> dict[str, float]:
        """Per-label probabilities for ``text``."""
        self._require_trained()
        vector = self.vectorizer.transform_one(text)
        return {str(label): float(p) for label, p in self.classifier.predict_proba(vector).items()}

    def accuracy_on(self, texts: Sequence[str], labels: Sequence[str]) -> float:
        """Accuracy on a labelled evaluation set."""
        predictions = [self.predict_label(text) for text in texts]
        return accuracy(list(labels), predictions)


class SimulatedToxicityAPI(_TextClassifierAPI):
    """Stand-in for the Perspective toxic-content API.

    Binary labels ``{"toxic", "nontoxic"}``; :meth:`analyze` mirrors the
    Perspective response shape (a summary toxicity score in ``[0, 1]``).
    """

    service_name = "perspective_toxicity"

    def __init__(self, threshold: float = 0.5) -> None:
        # Word-level features only: the toxicity service is the most lexical
        # of the three probed APIs, which is also why it degrades the most in
        # the paper's Figure 4.
        super().__init__(
            vectorizer=NgramVectorizer(word_ngrams=(1, 2), char_ngrams=None),
            classifier=MultinomialNaiveBayes(alpha=0.5),
        )
        self.threshold = threshold

    def analyze(self, text: str) -> APIPrediction:
        """Perspective-style response for ``text``."""
        scores = self.predict_scores(text)
        toxicity = scores.get("toxic", 0.0)
        label = "toxic" if toxicity >= self.threshold else "nontoxic"
        raw = {
            "attributeScores": {
                "TOXICITY": {"summaryScore": {"value": toxicity, "type": "PROBABILITY"}}
            }
        }
        return APIPrediction(label=label, scores=scores, raw=raw)

    def predict_label(self, text: str) -> str:
        return self.analyze(text).label


class SimulatedSentimentAPI(_TextClassifierAPI):
    """Stand-in for the Google Cloud sentiment API.

    Three-way labels ``{"negative", "neutral", "positive"}``; the raw
    response carries a document score in ``[-1, 1]`` like the real service.
    """

    service_name = "cloud_sentiment"

    def __init__(self) -> None:
        super().__init__(
            vectorizer=NgramVectorizer(word_ngrams=(1, 2), char_ngrams=None),
            classifier=LogisticRegressionClassifier(epochs=40, seed=13),
        )

    def analyze(self, text: str) -> APIPrediction:
        """Cloud-NL-style sentiment response for ``text``."""
        scores = self.predict_scores(text)
        label = max(scores.items(), key=lambda item: (item[1], item[0]))[0]
        document_score = scores.get("positive", 0.0) - scores.get("negative", 0.0)
        raw = {"documentSentiment": {"score": document_score, "magnitude": abs(document_score)}}
        return APIPrediction(label=label, scores=scores, raw=raw)


class SimulatedCategoryAPI(_TextClassifierAPI):
    """Stand-in for the Google Cloud text-categorization API.

    Topic labels (e.g. ``politics``, ``health``, ``technology``, ...); the
    raw response lists categories with confidence, like ``classifyText``.
    """

    service_name = "cloud_categories"

    def __init__(self) -> None:
        super().__init__(
            vectorizer=NgramVectorizer(word_ngrams=(1, 1), char_ngrams=None),
            classifier=MultinomialNaiveBayes(alpha=1.0),
        )

    def analyze(self, text: str) -> APIPrediction:
        """classifyText-style response for ``text``."""
        scores = self.predict_scores(text)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        label = ranked[0][0]
        raw = {
            "categories": [
                {"name": f"/{name}", "confidence": confidence}
                for name, confidence in ranked[:3]
            ]
        }
        return APIPrediction(label=label, scores=scores, raw=raw)


class _SupportsPredictLabel(Protocol):
    service_name: str

    def predict_label(self, text: str) -> str:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class RobustnessPoint:
    """Accuracy of one API at one perturbation ratio."""

    service: str
    ratio: float
    accuracy: float
    num_samples: int

    def to_dict(self) -> dict[str, object]:
        """Serialize for the benchmark page export."""
        return {
            "service": self.service,
            "ratio": self.ratio,
            "accuracy": self.accuracy,
            "num_samples": self.num_samples,
        }


class RobustnessEvaluator:
    """Sweeps perturbation ratios and measures API accuracy (Figure 4).

    Parameters
    ----------
    perturb:
        A callable ``(text, ratio) -> perturbed_text`` — typically
        ``lambda text, ratio: cryptext.perturb(text, ratio=ratio).perturbed_text``
        for CrypText, or one of the machine baselines from
        :mod:`repro.adversarial` for comparison runs.
    ratios:
        Manipulation ratios to evaluate (0 is always worth including as the
        clean reference point).
    """

    def __init__(
        self,
        perturb: Callable[[str, float], str],
        ratios: Sequence[float] = (0.0, 0.15, 0.25, 0.5),
        repeats: int = 1,
    ) -> None:
        if not ratios:
            raise ClassifierError("ratios must not be empty")
        if repeats < 1:
            raise ClassifierError(f"repeats must be >= 1, got {repeats}")
        self.perturb = perturb
        self.ratios = tuple(ratios)
        self.repeats = repeats

    def evaluate(
        self,
        api: _SupportsPredictLabel,
        texts: Sequence[str],
        labels: Sequence[str],
    ) -> list[RobustnessPoint]:
        """Accuracy of ``api`` at every configured ratio.

        For ratios above zero the perturbation sampling is stochastic, so the
        reported accuracy is the mean over ``repeats`` independent
        perturbation passes.
        """
        if len(texts) != len(labels):
            raise ClassifierError(f"got {len(texts)} texts but {len(labels)} labels")
        if not texts:
            raise ClassifierError("cannot evaluate on an empty set")
        points: list[RobustnessPoint] = []
        reference = list(labels)
        for ratio in self.ratios:
            passes = 1 if ratio <= 0.0 else self.repeats
            scores: list[float] = []
            for _ in range(passes):
                if ratio <= 0.0:
                    evaluated_texts: Sequence[str] = texts
                else:
                    evaluated_texts = [self.perturb(text, ratio) for text in texts]
                predictions = [api.predict_label(text) for text in evaluated_texts]
                scores.append(accuracy(reference, predictions))
            points.append(
                RobustnessPoint(
                    service=api.service_name,
                    ratio=ratio,
                    accuracy=sum(scores) / len(scores),
                    num_samples=len(texts),
                )
            )
        return points

    def evaluate_many(
        self,
        apis: Sequence[_SupportsPredictLabel],
        datasets: Sequence[tuple[Sequence[str], Sequence[str]]],
    ) -> dict[str, list[RobustnessPoint]]:
        """Evaluate several APIs, each on its own ``(texts, labels)`` set."""
        if len(apis) != len(datasets):
            raise ClassifierError(
                f"got {len(apis)} APIs but {len(datasets)} datasets"
            )
        results: dict[str, list[RobustnessPoint]] = {}
        for api, (texts, labels) in zip(apis, datasets):
            results[api.service_name] = self.evaluate(api, texts, labels)
        return results
