"""N-gram feature extraction for the simulated NLP APIs.

The simulated APIs must behave like models "trained only on clean English
corpus" (paper §III-C): they learn word-level and character-level n-gram
features from clean text, which is precisely why out-of-vocabulary perturbed
tokens hurt them at inference time.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping, Sequence

from ..errors import ClassifierError
from ..text.tokenizer import Tokenizer

#: Sparse feature vector: feature name -> count/weight.
FeatureVector = dict[str, float]


class NgramVectorizer:
    """Bag of word n-grams plus optional character n-grams.

    Parameters
    ----------
    word_ngrams:
        Inclusive range ``(low, high)`` of word n-gram lengths.
    char_ngrams:
        Inclusive range of character n-gram lengths, or ``None`` to disable
        character features.
    lowercase:
        Lowercase text before feature extraction.
    min_document_frequency:
        Features occurring in fewer training documents are pruned from the
        vocabulary.
    max_features:
        Keep only this many most-frequent features (``None`` = unlimited).
    """

    def __init__(
        self,
        word_ngrams: tuple[int, int] = (1, 2),
        char_ngrams: tuple[int, int] | None = (3, 4),
        lowercase: bool = True,
        min_document_frequency: int = 1,
        max_features: int | None = None,
    ) -> None:
        if word_ngrams[0] < 1 or word_ngrams[0] > word_ngrams[1]:
            raise ClassifierError(f"invalid word_ngrams range: {word_ngrams}")
        if char_ngrams is not None and (char_ngrams[0] < 1 or char_ngrams[0] > char_ngrams[1]):
            raise ClassifierError(f"invalid char_ngrams range: {char_ngrams}")
        if min_document_frequency < 1:
            raise ClassifierError(
                f"min_document_frequency must be >= 1, got {min_document_frequency}"
            )
        self.word_ngrams = word_ngrams
        self.char_ngrams = char_ngrams
        self.lowercase = lowercase
        self.min_document_frequency = min_document_frequency
        self.max_features = max_features
        self._tokenizer = Tokenizer(lowercase=lowercase)
        self._vocabulary: dict[str, int] = {}
        self._fitted = False

    # ------------------------------------------------------------------ #
    def _raw_features(self, text: str) -> FeatureVector:
        source = text.lower() if self.lowercase else text
        tokens = [token.text for token in self._tokenizer.word_tokens(text)]
        features: Counter[str] = Counter()
        low, high = self.word_ngrams
        for size in range(low, high + 1):
            for start in range(len(tokens) - size + 1):
                gram = " ".join(tokens[start : start + size])
                features[f"w{size}:{gram}"] += 1
        if self.char_ngrams is not None:
            padded = f" {source} "
            char_low, char_high = self.char_ngrams
            for size in range(char_low, char_high + 1):
                for start in range(len(padded) - size + 1):
                    features[f"c{size}:{padded[start:start + size]}"] += 1
        return dict(features)

    def fit(self, texts: Sequence[str]) -> "NgramVectorizer":
        """Learn the feature vocabulary from ``texts``."""
        if not texts:
            raise ClassifierError("cannot fit a vectorizer on an empty corpus")
        document_frequency: Counter[str] = Counter()
        total_frequency: Counter[str] = Counter()
        for text in texts:
            features = self._raw_features(text)
            for name, count in features.items():
                document_frequency[name] += 1
                total_frequency[name] += count
        kept = [
            name
            for name, frequency in document_frequency.items()
            if frequency >= self.min_document_frequency
        ]
        kept.sort(key=lambda name: (-total_frequency[name], name))
        if self.max_features is not None:
            kept = kept[: self.max_features]
        self._vocabulary = {name: index for index, name in enumerate(sorted(kept))}
        self._fitted = True
        return self

    @property
    def vocabulary(self) -> Mapping[str, int]:
        """Feature name -> column index."""
        return dict(self._vocabulary)

    def __len__(self) -> int:
        return len(self._vocabulary)

    def transform_one(self, text: str) -> FeatureVector:
        """Sparse feature vector of ``text`` restricted to the fitted vocabulary."""
        if not self._fitted:
            raise ClassifierError("the vectorizer has not been fitted yet")
        raw = self._raw_features(text)
        return {name: count for name, count in raw.items() if name in self._vocabulary}

    def transform(self, texts: Iterable[str]) -> list[FeatureVector]:
        """Transform many texts."""
        return [self.transform_one(text) for text in texts]

    def fit_transform(self, texts: Sequence[str]) -> list[FeatureVector]:
        """Fit on ``texts`` then transform them."""
        return self.fit(texts).transform(texts)

    def coverage(self, text: str) -> float:
        """Fraction of the text's raw features present in the vocabulary.

        A direct measurement of *why* perturbations hurt a clean-trained
        model: perturbed inputs have lower feature coverage.
        """
        if not self._fitted:
            raise ClassifierError("the vectorizer has not been fitted yet")
        raw = self._raw_features(text)
        if not raw:
            return 0.0
        known = sum(1 for name in raw if name in self._vocabulary)
        return known / len(raw)
