"""Text classifiers and simulated third-party NLP APIs.

Figure 4 of the paper evaluates how Google Cloud's NLP APIs — Perspective
toxicity detection, sentiment analysis, and text categorization — degrade on
texts perturbed by CrypText.  Those APIs are closed black boxes and
unreachable offline, so this subpackage builds the equivalent experimental
setup from scratch:

* :mod:`repro.classifiers.features` — word and character n-gram feature
  extraction;
* :mod:`repro.classifiers.naive_bayes` — multinomial Naive Bayes;
* :mod:`repro.classifiers.logistic` — multinomial logistic regression trained
  with mini-batch gradient descent (NumPy);
* :mod:`repro.classifiers.apis` — the simulated APIs: each one wraps a
  classifier trained on *clean* text only, so that — exactly like the real
  services the paper probes — its accuracy drops when inputs carry
  human-written perturbations.
"""

from .features import NgramVectorizer
from .naive_bayes import MultinomialNaiveBayes
from .logistic import LogisticRegressionClassifier
from .apis import (
    SimulatedToxicityAPI,
    SimulatedSentimentAPI,
    SimulatedCategoryAPI,
    APIPrediction,
    RobustnessEvaluator,
    RobustnessPoint,
)
from .signals import PerturbationSignalExtractor, combine_feature_vectors

__all__ = [
    "NgramVectorizer",
    "MultinomialNaiveBayes",
    "LogisticRegressionClassifier",
    "SimulatedToxicityAPI",
    "SimulatedSentimentAPI",
    "SimulatedCategoryAPI",
    "APIPrediction",
    "RobustnessEvaluator",
    "RobustnessPoint",
    "PerturbationSignalExtractor",
    "combine_feature_vectors",
]
