"""Multinomial Naive Bayes over sparse n-gram features."""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Hashable, Sequence

from ..errors import ClassifierError
from .features import FeatureVector

Label = Hashable


class MultinomialNaiveBayes:
    """Classic multinomial Naive Bayes with Laplace smoothing.

    Works directly on the sparse ``{feature: count}`` vectors produced by
    :class:`~repro.classifiers.features.NgramVectorizer`; unseen features at
    prediction time are ignored (they carry no class evidence), which is the
    textbook behaviour that makes the model brittle to perturbed tokens.
    """

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ClassifierError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha
        self._class_log_prior: dict[Label, float] = {}
        self._feature_log_likelihood: dict[Label, dict[str, float]] = {}
        self._default_log_likelihood: dict[Label, float] = {}
        self._classes: tuple[Label, ...] = ()
        self._fitted = False

    # ------------------------------------------------------------------ #
    def fit(
        self, vectors: Sequence[FeatureVector], labels: Sequence[Label]
    ) -> "MultinomialNaiveBayes":
        """Estimate class priors and per-class feature likelihoods."""
        if len(vectors) != len(labels):
            raise ClassifierError(
                f"got {len(vectors)} vectors but {len(labels)} labels"
            )
        if not vectors:
            raise ClassifierError("cannot fit on an empty training set")
        class_counts: Counter[Label] = Counter(labels)
        feature_counts: dict[Label, Counter[str]] = defaultdict(Counter)
        vocabulary: set[str] = set()
        for vector, label in zip(vectors, labels):
            for feature, count in vector.items():
                feature_counts[label][feature] += count
                vocabulary.add(feature)
        vocabulary_size = max(len(vocabulary), 1)
        total = sum(class_counts.values())
        self._classes = tuple(sorted(class_counts, key=str))
        self._class_log_prior = {
            label: math.log(count / total) for label, count in class_counts.items()
        }
        self._feature_log_likelihood = {}
        self._default_log_likelihood = {}
        for label in self._classes:
            counts = feature_counts[label]
            denominator = sum(counts.values()) + self.alpha * vocabulary_size
            self._feature_log_likelihood[label] = {
                feature: math.log((count + self.alpha) / denominator)
                for feature, count in counts.items()
            }
            self._default_log_likelihood[label] = math.log(self.alpha / denominator)
        self._fitted = True
        return self

    @property
    def classes(self) -> tuple[Label, ...]:
        """Class labels seen at training time."""
        return self._classes

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ClassifierError("the classifier has not been fitted yet")

    # ------------------------------------------------------------------ #
    def log_scores(self, vector: FeatureVector) -> dict[Label, float]:
        """Unnormalized per-class log joint scores for ``vector``."""
        self._require_fitted()
        scores: dict[Label, float] = {}
        for label in self._classes:
            likelihoods = self._feature_log_likelihood[label]
            default = self._default_log_likelihood[label]
            score = self._class_log_prior[label]
            for feature, count in vector.items():
                score += count * likelihoods.get(feature, default)
            scores[label] = score
        return scores

    def predict_proba(self, vector: FeatureVector) -> dict[Label, float]:
        """Posterior class probabilities (softmax of the log scores)."""
        scores = self.log_scores(vector)
        peak = max(scores.values())
        exponentials = {label: math.exp(score - peak) for label, score in scores.items()}
        normalizer = sum(exponentials.values())
        return {label: value / normalizer for label, value in exponentials.items()}

    def predict(self, vector: FeatureVector) -> Label:
        """Most probable class for ``vector``."""
        scores = self.log_scores(vector)
        return max(scores.items(), key=lambda item: (item[1], str(item[0])))[0]

    def predict_many(self, vectors: Sequence[FeatureVector]) -> list[Label]:
        """Predict a batch of vectors."""
        return [self.predict(vector) for vector in vectors]

    def score(
        self, vectors: Sequence[FeatureVector], labels: Sequence[Label]
    ) -> float:
        """Accuracy on a labelled set."""
        if len(vectors) != len(labels):
            raise ClassifierError(
                f"got {len(vectors)} vectors but {len(labels)} labels"
            )
        if not vectors:
            raise ClassifierError("cannot score an empty evaluation set")
        predictions = self.predict_many(vectors)
        correct = sum(
            1 for prediction, label in zip(predictions, labels) if prediction == label
        )
        return correct / len(labels)
