"""Coherency scoring for Normalization candidates.

Paper §III-C: when several English words could explain a perturbed token,
CrypText "utilize[s] a large pre-trained masked language model G to calculate
a coherency score ... how likely w* appears in the immediate context of
x_i".  This module reproduces that ranking signal without a pre-trained
transformer: a forward n-gram model and a backward n-gram model (trained on
the reversed corpus) are combined so that both the left and the right context
of the masked position contribute, which is the essential property of masked
LM scoring that the normalizer relies on.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import LanguageModelError
from .ngram import NgramLanguageModel


class CoherencyScorer:
    """Masked-position coherency scorer backed by two n-gram models.

    Parameters
    ----------
    order:
        N-gram order of both directional models.
    alpha:
        Lidstone smoothing constant.
    backward_weight:
        Weight of the backward (right-context) model in the combined score;
        the forward model receives ``1 - backward_weight``.
    """

    def __init__(
        self,
        order: int = 3,
        alpha: float = 0.1,
        backward_weight: float = 0.5,
    ) -> None:
        if not 0.0 <= backward_weight <= 1.0:
            raise LanguageModelError(
                f"backward_weight must lie in [0, 1], got {backward_weight}"
            )
        self.backward_weight = backward_weight
        self.forward_model = NgramLanguageModel(order=order, alpha=alpha)
        self.backward_model = NgramLanguageModel(order=order, alpha=alpha)
        self._trained = False

    def fit(self, sentences: Iterable[Sequence[str]]) -> "CoherencyScorer":
        """Train both directional models on tokenized sentences."""
        corpus = [list(sentence) for sentence in sentences]
        self.forward_model.fit(corpus)
        self.backward_model.fit([list(reversed(sentence)) for sentence in corpus])
        self._trained = True
        return self

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._trained

    def _require_trained(self) -> None:
        if not self._trained:
            raise LanguageModelError("the coherency scorer has not been trained yet")

    def score(
        self,
        candidate: str,
        left_context: Sequence[str],
        right_context: Sequence[str] = (),
    ) -> float:
        """Coherency (log-likelihood) of ``candidate`` at a masked position.

        Higher is more coherent.  The forward model conditions on
        ``left_context`` (closest word last); the backward model conditions on
        ``right_context`` (closest word first, internally reversed).
        """
        self._require_trained()
        forward = self.forward_model.log_probability(candidate, left_context)
        backward = self.backward_model.log_probability(
            candidate, list(reversed(list(right_context)))
        )
        return (1.0 - self.backward_weight) * forward + self.backward_weight * backward

    def rank_candidates(
        self,
        candidates: Sequence[str],
        left_context: Sequence[str],
        right_context: Sequence[str] = (),
    ) -> list[tuple[str, float]]:
        """Score every candidate and return ``(candidate, score)`` best first."""
        scored = [
            (candidate, self.score(candidate, left_context, right_context))
            for candidate in candidates
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored

    def sentence_log_probability(self, tokens: Sequence[str]) -> float:
        """Forward-model log probability of a full sentence (for diagnostics)."""
        self._require_trained()
        return self.forward_model.sentence_log_probability(tokens)
