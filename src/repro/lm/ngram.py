"""Interpolated n-gram language model.

This is the trainable substrate behind the coherency score of the
Normalization function.  It is intentionally classic: maximum-likelihood
n-gram estimates with Lidstone (add-``alpha``) smoothing, linearly
interpolated across orders so that unseen higher-order contexts back off
gracefully to lower orders.

The model works on *word tokens*; the normalizer lowercases and canonicalizes
its inputs before scoring so that the coherency signal reflects meaning, not
surface perturbation.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Iterable, Sequence

from ..errors import LanguageModelError
from .vocab import SENTENCE_END, SENTENCE_START, UNK_TOKEN, Vocabulary


class NgramLanguageModel:
    """Interpolated n-gram model with Lidstone smoothing.

    Parameters
    ----------
    order:
        Maximum n-gram order (3 = trigram model, the library default).
    alpha:
        Lidstone smoothing constant added to every count.
    interpolation_weights:
        Optional per-order interpolation weights, highest order first; they
        are normalized to sum to one.  The default weights decay by a factor
        of two per order (e.g. trigram ``0.57, 0.29, 0.14``).
    vocabulary:
        Optional pre-built vocabulary; one is fitted from the training corpus
        when omitted.
    """

    def __init__(
        self,
        order: int = 3,
        alpha: float = 0.1,
        interpolation_weights: Sequence[float] | None = None,
        vocabulary: Vocabulary | None = None,
    ) -> None:
        if order < 1:
            raise LanguageModelError(f"order must be >= 1, got {order}")
        if alpha <= 0:
            raise LanguageModelError(f"alpha must be positive, got {alpha}")
        self.order = order
        self.alpha = alpha
        if interpolation_weights is None:
            raw = [2.0 ** (order - rank) for rank in range(order, 0, -1)]
            raw.reverse()
        else:
            if len(interpolation_weights) != order:
                raise LanguageModelError(
                    f"expected {order} interpolation weights, "
                    f"got {len(interpolation_weights)}"
                )
            if any(weight < 0 for weight in interpolation_weights):
                raise LanguageModelError("interpolation weights must be non-negative")
            raw = list(interpolation_weights)
        total = sum(raw)
        if total <= 0:
            raise LanguageModelError("interpolation weights must not all be zero")
        #: weights[i] corresponds to n-gram order i+1
        self.weights: tuple[float, ...] = tuple(weight / total for weight in raw)
        self.vocabulary = vocabulary
        self._ngram_counts: dict[int, Counter[tuple[str, ...]]] = defaultdict(Counter)
        self._context_counts: dict[int, Counter[tuple[str, ...]]] = defaultdict(Counter)
        self._trained = False

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def _prepare(self, sentence: Iterable[str]) -> list[str]:
        assert self.vocabulary is not None
        padded = (
            [SENTENCE_START] * (self.order - 1)
            + [token for token in sentence]
            + [SENTENCE_END]
        )
        return [
            token
            if token in (SENTENCE_START, SENTENCE_END) or token in self.vocabulary
            else UNK_TOKEN
            for token in (t.lower() if t not in (SENTENCE_START, SENTENCE_END) else t for t in padded)
        ]

    def fit(self, sentences: Iterable[Iterable[str]]) -> "NgramLanguageModel":
        """Train on an iterable of tokenized sentences."""
        corpus = [list(sentence) for sentence in sentences]
        if self.vocabulary is None:
            self.vocabulary = Vocabulary().fit(corpus)
        for sentence in corpus:
            tokens = self._prepare(sentence)
            for ngram_order in range(1, self.order + 1):
                for start in range(len(tokens) - ngram_order + 1):
                    gram = tuple(tokens[start : start + ngram_order])
                    # Skip n-grams that are purely padding.
                    if all(token == SENTENCE_START for token in gram):
                        continue
                    self._ngram_counts[ngram_order][gram] += 1
                    self._context_counts[ngram_order][gram[:-1]] += 1
        self._trained = True
        return self

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._trained

    def _require_trained(self) -> None:
        if not self._trained or self.vocabulary is None:
            raise LanguageModelError("the language model has not been trained yet")

    # ------------------------------------------------------------------ #
    # probabilities
    # ------------------------------------------------------------------ #
    def _order_probability(self, gram: tuple[str, ...]) -> float:
        """Lidstone-smoothed P(w | context) for a single order."""
        assert self.vocabulary is not None
        ngram_order = len(gram)
        numerator = self._ngram_counts[ngram_order][gram] + self.alpha
        denominator = (
            self._context_counts[ngram_order][gram[:-1]]
            + self.alpha * max(len(self.vocabulary), 1)
        )
        return numerator / denominator

    def _map_token(self, token: str) -> str:
        assert self.vocabulary is not None
        if token in (SENTENCE_START, SENTENCE_END):
            return token
        lowered = token.lower()
        return lowered if lowered in self.vocabulary else UNK_TOKEN

    def probability(self, token: str, context: Sequence[str] = ()) -> float:
        """Interpolated ``P(token | context)``.

        ``context`` is the sequence of tokens immediately preceding
        ``token``; only the last ``order - 1`` items are used.
        """
        self._require_trained()
        mapped_token = self._map_token(token)
        mapped_context = [self._map_token(item) for item in context][-(self.order - 1) :] if self.order > 1 else []
        probability = 0.0
        for ngram_order in range(1, self.order + 1):
            weight = self.weights[ngram_order - 1]
            if weight == 0.0:
                continue
            if ngram_order == 1:
                gram: tuple[str, ...] = (mapped_token,)
            else:
                needed = ngram_order - 1
                tail = mapped_context[-needed:] if needed <= len(mapped_context) else None
                if tail is None or len(tail) < needed:
                    # Not enough context for this order; give its mass to the
                    # orders that do have context by skipping (weights are
                    # re-normalized implicitly via the final division).
                    continue
                gram = tuple(tail) + (mapped_token,)
            probability += weight * self._order_probability(gram)
        used_weight = sum(
            self.weights[ngram_order - 1]
            for ngram_order in range(1, self.order + 1)
            if ngram_order == 1 or ngram_order - 1 <= len(mapped_context)
        )
        return probability / used_weight if used_weight > 0 else probability

    def log_probability(self, token: str, context: Sequence[str] = ()) -> float:
        """Natural log of :meth:`probability` (floored to avoid ``-inf``)."""
        return math.log(max(self.probability(token, context), 1e-12))

    def sentence_log_probability(self, tokens: Sequence[str]) -> float:
        """Sum of per-token log probabilities with sentence padding."""
        self._require_trained()
        padded = [SENTENCE_START] * (self.order - 1) + [t for t in tokens] + [SENTENCE_END]
        total = 0.0
        for position in range(self.order - 1, len(padded)):
            context = padded[max(0, position - self.order + 1) : position]
            total += self.log_probability(padded[position], context)
        return total

    def perplexity(self, tokens: Sequence[str]) -> float:
        """Perplexity of a token sequence under the model."""
        if not tokens:
            raise LanguageModelError("cannot compute perplexity of an empty sequence")
        log_probability = self.sentence_log_probability(tokens)
        return math.exp(-log_probability / (len(tokens) + 1))

    def score_in_context(
        self,
        candidate: str,
        left_context: Sequence[str],
        right_context: Sequence[str] = (),
    ) -> float:
        """Log-likelihood of ``candidate`` at a masked position.

        Combines ``P(candidate | left_context)`` with the probability the
        candidate assigns to the following token ``P(next | ..., candidate)``,
        which is how an n-gram model can exploit right context.
        """
        self._require_trained()
        score = self.log_probability(candidate, left_context)
        if right_context:
            following_context = list(left_context[-(self.order - 2):] if self.order > 2 else [])
            following_context.append(candidate)
            score += self.log_probability(right_context[0], following_context)
        return score
