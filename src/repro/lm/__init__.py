"""Language-model substrate.

The Normalization function ranks candidate corrections by a *coherency
score*: "how likely w* appears in the immediate context of x_i", computed in
the paper with a large pre-trained masked language model (BERT).  Offline and
from scratch, this subpackage provides the equivalent ranking signal:

* :class:`repro.lm.Vocabulary` — token/id mapping with an unknown token;
* :class:`repro.lm.NgramLanguageModel` — an interpolated n-gram model with
  Lidstone smoothing, trainable on any corpus of sentences;
* :class:`repro.lm.CoherencyScorer` — the masked-position scoring API used by
  the normalizer: a forward and a backward n-gram model are combined so both
  left and right context contribute, mirroring a masked LM's bidirectional
  conditioning.
"""

from .vocab import Vocabulary, UNK_TOKEN, SENTENCE_START, SENTENCE_END
from .ngram import NgramLanguageModel
from .coherency import CoherencyScorer

__all__ = [
    "Vocabulary",
    "UNK_TOKEN",
    "SENTENCE_START",
    "SENTENCE_END",
    "NgramLanguageModel",
    "CoherencyScorer",
]
