"""Vocabulary: token/id mapping with special symbols."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from ..errors import LanguageModelError

#: Symbol substituted for tokens never seen at training time.
UNK_TOKEN = "<unk>"
#: Sentence boundary padding symbols.
SENTENCE_START = "<s>"
SENTENCE_END = "</s>"

SPECIAL_TOKENS: tuple[str, ...] = (UNK_TOKEN, SENTENCE_START, SENTENCE_END)


class Vocabulary:
    """Bidirectional token/id mapping built from a corpus.

    Parameters
    ----------
    min_count:
        Tokens occurring fewer than this many times are mapped to
        :data:`UNK_TOKEN` (keeps the model size bounded on noisy corpora).
    lowercase:
        Fold tokens to lowercase before counting — the language model scores
        *meaning-level* coherency, so case variants share statistics.
    """

    def __init__(self, min_count: int = 1, lowercase: bool = True) -> None:
        if min_count < 1:
            raise LanguageModelError(f"min_count must be >= 1, got {min_count}")
        self.min_count = min_count
        self.lowercase = lowercase
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self._counts: Counter[str] = Counter()
        for token in SPECIAL_TOKENS:
            self._add(token)

    def _add(self, token: str) -> int:
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)
        return self._token_to_id[token]

    def _normalize(self, token: str) -> str:
        return token.lower() if self.lowercase and token not in SPECIAL_TOKENS else token

    # ------------------------------------------------------------------ #
    def fit(self, sentences: Iterable[Iterable[str]]) -> "Vocabulary":
        """Count tokens across ``sentences`` and build the id mapping."""
        for sentence in sentences:
            for token in sentence:
                self._counts[self._normalize(token)] += 1
        for token, count in sorted(self._counts.items()):
            if count >= self.min_count:
                self._add(token)
        return self

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: object) -> bool:
        return isinstance(token, str) and self._normalize(token) in self._token_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    def id_of(self, token: str) -> int:
        """Id of ``token`` (the UNK id when out of vocabulary)."""
        return self._token_to_id.get(self._normalize(token), self._token_to_id[UNK_TOKEN])

    def token_of(self, token_id: int) -> str:
        """Token string for ``token_id``."""
        try:
            return self._id_to_token[token_id]
        except IndexError as exc:
            raise LanguageModelError(f"unknown token id {token_id}") from exc

    def encode(self, tokens: Iterable[str]) -> list[int]:
        """Map a token sequence to ids (OOV tokens become UNK)."""
        return [self.id_of(token) for token in tokens]

    def count_of(self, token: str) -> int:
        """Training-corpus count of ``token`` (0 if unseen)."""
        return self._counts.get(self._normalize(token), 0)

    @property
    def tokens(self) -> tuple[str, ...]:
        """Every token in id order (specials first)."""
        return tuple(self._id_to_token)
