"""Embedded document store (MongoDB stand-in).

CrypText stores every artifact — the token dictionary hash-maps, crawled
posts, cached benchmark results — in MongoDB collections (paper §III-F).
:class:`DocumentStore` reproduces the slice of that interface the system
needs as an in-process, dependency-free engine:

* schemaless documents (plain ``dict``) with an ``_id`` primary key;
* ``insert_one`` / ``insert_many`` / ``find`` / ``find_one`` / ``count`` /
  ``update_one`` / ``delete_many`` / ``distinct``;
* Mongo-style filter documents (see :mod:`repro.storage.query`);
* secondary hash indexes that accelerate equality and ``$in`` filters;
* JSONL persistence via :mod:`repro.storage.persistence`.

The store is deliberately synchronous and single-process: the reproduction
targets library use, not a networked deployment.
"""

from __future__ import annotations

import copy
import functools
import itertools
from copy import deepcopy as _deepcopy
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from ..analysis.sanitizer import tracked_rlock
from ..errors import DocumentNotFoundError, DuplicateKeyError, QueryError, StorageError
from .index import HashIndex
from .query import compile_filter


def _locked(method):
    """Run ``method`` while holding the collection's reentrant lock."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self.lock:
            return method(self, *args, **kwargs)

    return wrapper


class Collection:
    """A named collection of documents.

    Documents are stored as deep copies so callers cannot mutate the store's
    internal state by accident, mirroring the value semantics of a real
    database client.

    A reentrant lock serializes every read and write: the batch engine runs
    Look Up retrieval from worker threads while the crawler concurrently
    enriches the token collection, and a real database client would likewise
    present each operation as atomic.  Callers that need a compound
    read-modify-write to be atomic (e.g. the dictionary's upsert of a token
    count) should hold :attr:`lock` across the sequence.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._documents: dict[Any, dict[str, Any]] = {}
        self._indexes: dict[str, HashIndex] = {}
        self._id_counter = itertools.count(1)
        self.lock = tracked_rlock("storage.collection")

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @_locked
    def __len__(self) -> int:
        return len(self._documents)

    @_locked
    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._documents

    def __iter__(self) -> Iterator[dict[str, Any]]:
        # Snapshot under the lock, copy outside it: stored documents are
        # replaced wholesale on update (never mutated in place), so deep
        # copying the snapshot is safe without holding the lock across yields.
        with self.lock:
            snapshot = list(self._documents.values())
        for document in snapshot:
            yield copy.deepcopy(document)

    @property
    def index_fields(self) -> tuple[str, ...]:
        """Fields that currently have a secondary index."""
        return tuple(sorted(self._indexes))

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def _next_id(self) -> int:
        candidate = next(self._id_counter)
        while candidate in self._documents:
            candidate = next(self._id_counter)
        return candidate

    @_locked
    def insert_one(self, document: Mapping[str, Any]) -> Any:
        """Insert a document, returning its ``_id``.

        If the document has no ``_id`` one is assigned.  Inserting a
        duplicate ``_id`` raises :class:`~repro.errors.DuplicateKeyError`.
        """
        if not isinstance(document, Mapping):
            raise StorageError(
                f"documents must be mappings, got {type(document).__name__}"
            )
        stored = copy.deepcopy(dict(document))
        doc_id = stored.get("_id")
        if doc_id is None:
            doc_id = self._next_id()
            stored["_id"] = doc_id
        elif doc_id in self._documents:
            raise DuplicateKeyError(
                f"collection {self.name!r} already has a document with _id={doc_id!r}"
            )
        self._documents[doc_id] = stored
        for index in self._indexes.values():
            index.add(doc_id, stored)
        return doc_id

    def insert_many(self, documents: Iterable[Mapping[str, Any]]) -> list[Any]:
        """Insert many documents, returning their ids in order."""
        return [self.insert_one(document) for document in documents]

    @_locked
    def load_documents(
        self, documents: Iterable[Mapping[str, Any]], copy: bool = True
    ) -> int:
        """Bulk-insert ``documents`` in one locked pass; returns the count.

        The warm-start path for persistence: one lock acquisition and one
        index update per document, and with ``copy=False`` the documents are
        adopted by reference — only valid when the caller hands over
        ownership (freshly parsed JSON it will never touch again), which is
        exactly what the JSONL loader and the snapshot loader do.  Duplicate
        ``_id``\\ s raise :class:`~repro.errors.DuplicateKeyError` exactly
        like :meth:`insert_one`.
        """
        count = 0
        for document in documents:
            if not isinstance(document, dict) and not isinstance(document, Mapping):
                raise StorageError(
                    f"documents must be mappings, got {type(document).__name__}"
                )
            stored = _deepcopy(dict(document)) if copy else dict(document)
            doc_id = stored.get("_id")
            if doc_id is None:
                doc_id = self._next_id()
                stored["_id"] = doc_id
            elif doc_id in self._documents:
                raise DuplicateKeyError(
                    f"collection {self.name!r} already has a document with _id={doc_id!r}"
                )
            self._documents[doc_id] = stored
            for index in self._indexes.values():
                index.add(doc_id, stored)
            count += 1
        return count

    @_locked
    def replace_one(self, doc_id: Any, document: Mapping[str, Any]) -> None:
        """Replace the document with id ``doc_id`` entirely."""
        if doc_id not in self._documents:
            raise DocumentNotFoundError(
                f"collection {self.name!r} has no document with _id={doc_id!r}"
            )
        stored = copy.deepcopy(dict(document))
        stored["_id"] = doc_id
        self._documents[doc_id] = stored
        for index in self._indexes.values():
            index.add(doc_id, stored)

    @_locked
    def update_one(
        self,
        filter_document: Mapping[str, Any] | None,
        update: Mapping[str, Any],
        upsert: bool = False,
    ) -> bool:
        """Apply a ``$set`` / ``$inc`` / ``$addToSet`` update to one document.

        Returns ``True`` if a document was modified (or upserted).
        """
        allowed = {"$set", "$inc", "$addToSet", "$push"}
        unknown = set(update) - allowed
        if unknown:
            raise QueryError(f"unsupported update operators: {sorted(unknown)}")
        target = self.find_one(filter_document)
        if target is None:
            if not upsert:
                return False
            seed: dict[str, Any] = {}
            if filter_document:
                for key, value in filter_document.items():
                    if not key.startswith("$") and not isinstance(value, Mapping):
                        seed[key] = value
            document = seed
            doc_id = None
        else:
            doc_id = target["_id"]
            document = target

        for key, value in update.get("$set", {}).items():
            document[key] = value
        for key, value in update.get("$inc", {}).items():
            document[key] = document.get(key, 0) + value
        for key, value in update.get("$addToSet", {}).items():
            existing = list(document.get(key, []))
            if value not in existing:
                existing.append(value)
            document[key] = existing
        for key, value in update.get("$push", {}).items():
            existing = list(document.get(key, []))
            existing.append(value)
            document[key] = existing

        if doc_id is None:
            self.insert_one(document)
        else:
            self.replace_one(doc_id, document)
        return True

    @_locked
    def delete_many(self, filter_document: Mapping[str, Any] | None = None) -> int:
        """Delete every matching document, returning how many were removed."""
        predicate = compile_filter(filter_document)
        doomed = [
            doc_id
            for doc_id, document in self._documents.items()
            if predicate(document)
        ]
        for doc_id in doomed:
            del self._documents[doc_id]
            for index in self._indexes.values():
                index.remove(doc_id)
        return len(doomed)

    @_locked
    def clear(self) -> None:
        """Remove every document (indexes are kept but emptied).

        The auto-id counter restarts too: a cleared collection assigns ids
        exactly like a freshly constructed one (``_next_id`` skips over any
        ids reinstalled by a snapshot load).  Wholesale replacement relies
        on this — crash recovery must hand a replayed insert the same id
        the crashed process assigned, because ``str(_id)`` order is bucket
        order and bucket order is ranking order.
        """
        self._documents.clear()
        self._id_counter = itertools.count(1)
        for index in self._indexes.values():
            index.clear()

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def _candidate_ids(
        self, filter_document: Mapping[str, Any] | None
    ) -> Iterable[Any] | None:
        """Use an index to narrow the candidate set, when possible."""
        if not filter_document:
            return None
        for field, condition in filter_document.items():
            if field.startswith("$") or field not in self._indexes:
                continue
            index = self._indexes[field]
            if isinstance(condition, Mapping):
                if "$eq" in condition:
                    return index.lookup(condition["$eq"])
                if "$in" in condition:
                    return index.lookup_many(condition["$in"])
                if "$elem" in condition and index.multi:
                    return index.lookup(condition["$elem"])
                continue
            return index.lookup(condition)
        return None

    @_locked
    def find(
        self,
        filter_document: Mapping[str, Any] | None = None,
        sort: str | None = None,
        reverse: bool = False,
        limit: int | None = None,
        projection: Sequence[str] | None = None,
    ) -> list[dict[str, Any]]:
        """Return deep copies of every matching document.

        Parameters
        ----------
        filter_document:
            Mongo-style filter (``None`` matches everything).
        sort:
            Field name to sort by (missing values sort first).
        reverse:
            Sort descending.
        limit:
            Return at most this many documents.
        projection:
            If given, keep only these fields (``_id`` is always kept).
        """
        predicate = compile_filter(filter_document)
        candidate_ids = self._candidate_ids(filter_document)
        if candidate_ids is None:
            candidates: Iterable[dict[str, Any]] = self._documents.values()
        else:
            candidates = (
                self._documents[doc_id]
                for doc_id in candidate_ids
                if doc_id in self._documents
            )
        matched = [copy.deepcopy(doc) for doc in candidates if predicate(doc)]
        if sort is not None:
            matched.sort(
                key=lambda doc: (doc.get(sort) is not None, doc.get(sort)),
                reverse=reverse,
            )
        else:
            matched.sort(key=lambda doc: str(doc.get("_id")))
        if limit is not None:
            matched = matched[:limit]
        if projection is not None:
            keep = set(projection) | {"_id"}
            matched = [
                {key: value for key, value in doc.items() if key in keep}
                for doc in matched
            ]
        return matched

    def find_one(
        self, filter_document: Mapping[str, Any] | None = None
    ) -> dict[str, Any] | None:
        """Return one matching document or ``None``."""
        results = self.find(filter_document, limit=1)
        return results[0] if results else None

    @_locked
    def get(self, doc_id: Any) -> dict[str, Any]:
        """Return the document with ``doc_id`` or raise."""
        if doc_id not in self._documents:
            raise DocumentNotFoundError(
                f"collection {self.name!r} has no document with _id={doc_id!r}"
            )
        return copy.deepcopy(self._documents[doc_id])

    @_locked
    def project_values(self, fields: Sequence[str]) -> list[tuple]:
        """Top-level field values of every document, without deep copies.

        One tuple per document (missing fields yield ``None``), in
        arbitrary order.  Only the *values* are shared with storage — safe
        for scalar fields (strings, numbers, booleans), which is exactly
        what the dictionary's content fingerprint reads on every
        incremental save; deep-copying 10k documents just to hash three
        scalar fields was the dominant cost of a small delta.
        """
        return [
            tuple(document.get(field) for field in fields)
            for document in self._documents.values()
        ]

    @_locked
    def count(self, filter_document: Mapping[str, Any] | None = None) -> int:
        """Count matching documents."""
        if not filter_document:
            return len(self._documents)
        predicate = compile_filter(filter_document)
        candidate_ids = self._candidate_ids(filter_document)
        if candidate_ids is None:
            return sum(1 for doc in self._documents.values() if predicate(doc))
        return sum(
            1
            for doc_id in candidate_ids
            if doc_id in self._documents and predicate(self._documents[doc_id])
        )

    @_locked
    def distinct(
        self, field: str, filter_document: Mapping[str, Any] | None = None
    ) -> list[Any]:
        """Distinct values of ``field`` across matching documents."""
        predicate = compile_filter(filter_document)
        seen: list[Any] = []
        seen_keys: set[Any] = set()
        for document in self._documents.values():
            if not predicate(document):
                continue
            if field not in document:
                continue
            value = document[field]
            key = tuple(value) if isinstance(value, list) else value
            if key not in seen_keys:
                seen_keys.add(key)
                seen.append(copy.deepcopy(value))
        return seen

    @_locked
    def aggregate_counts(
        self,
        field: str,
        filter_document: Mapping[str, Any] | None = None,
    ) -> dict[Any, int]:
        """Group-by count of ``field`` values (multikey for list fields)."""
        predicate = compile_filter(filter_document)
        counts: dict[Any, int] = {}
        for document in self._documents.values():
            if not predicate(document) or field not in document:
                continue
            value = document[field]
            values = value if isinstance(value, (list, tuple)) else [value]
            for item in values:
                counts[item] = counts.get(item, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    # indexes
    # ------------------------------------------------------------------ #
    @_locked
    def create_index(self, field: str, multi: bool = False) -> HashIndex:
        """Create (or return) a secondary hash index over ``field``."""
        if field in self._indexes:
            return self._indexes[field]
        index = HashIndex(field, multi=multi)
        for doc_id, document in self._documents.items():
            index.add(doc_id, document)
        self._indexes[field] = index
        return index

    @_locked
    def drop_index(self, field: str) -> None:
        """Drop the index over ``field`` (no-op if absent)."""
        self._indexes.pop(field, None)


class DocumentStore:
    """A named set of collections — the Mongo-database stand-in."""

    def __init__(self, name: str = "cryptext") -> None:
        self.name = name
        self._collections: dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        """Get or create the collection ``name``."""
        if name not in self._collections:
            self._collections[name] = Collection(name)
        return self._collections[name]

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def __contains__(self, name: object) -> bool:
        return name in self._collections

    def collection_names(self) -> tuple[str, ...]:
        """Names of the collections created so far."""
        return tuple(sorted(self._collections))

    def drop_collection(self, name: str) -> None:
        """Remove a collection and all its documents."""
        self._collections.pop(name, None)

    def stats(self) -> dict[str, dict[str, Any]]:
        """Per-collection document and index counts."""
        return {
            name: {
                "documents": len(collection),
                "indexes": list(collection.index_fields),
            }
            for name, collection in sorted(self._collections.items())
        }

    def apply(self, name: str, operation: Callable[[Collection], Any]) -> Any:
        """Run ``operation`` against collection ``name`` and return its result."""
        return operation(self.collection(name))
