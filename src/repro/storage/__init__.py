"""Storage substrate: embedded document store and query cache.

The CrypText architecture (paper §III-F) stores all its data in MongoDB and
puts a Redis cache in front of slow queries.  This subpackage provides
embedded, dependency-free stand-ins that expose the operations CrypText
actually needs:

* :class:`repro.storage.DocumentStore` / :class:`repro.storage.Collection` —
  schemaless document collections with Mongo-style filter documents
  (``{"field": {"$in": [...]}}``), secondary hash indexes, update/delete, and
  JSONL persistence;
* :class:`repro.storage.TTLCache` — a Redis-style key/value cache with
  per-entry TTL, LRU eviction, and hit/miss statistics, plus the
  :func:`repro.storage.cached` decorator used by the API layer.
"""

from .query import compile_filter, matches_filter
from .index import HashIndex
from .document_store import Collection, DocumentStore
from .persistence import (
    dump_collection,
    dump_store,
    iter_jsonl,
    load_collection,
    load_store,
    read_json,
    write_json_atomic,
    write_text_atomic,
)
from .snapshot import (
    SNAPSHOT_FILE_NAME,
    SNAPSHOT_FORMAT_VERSION,
    Snapshot,
    read_envelope,
    read_snapshot,
    resolve_snapshot,
    snapshot_checksum,
    write_envelope,
    write_snapshot,
)
from .cache import CacheStats, TTLCache, cached, make_key

__all__ = [
    "compile_filter",
    "matches_filter",
    "HashIndex",
    "Collection",
    "DocumentStore",
    "dump_collection",
    "dump_store",
    "iter_jsonl",
    "load_collection",
    "load_store",
    "read_json",
    "write_json_atomic",
    "write_text_atomic",
    "SNAPSHOT_FILE_NAME",
    "SNAPSHOT_FORMAT_VERSION",
    "Snapshot",
    "read_envelope",
    "read_snapshot",
    "resolve_snapshot",
    "snapshot_checksum",
    "write_envelope",
    "write_snapshot",
    "CacheStats",
    "TTLCache",
    "cached",
    "make_key",
]
