"""Redis-style TTL cache.

CrypText places a Redis cache in front of its slower DB queries so that
repeated Look Up / Normalization requests are served from memory (paper
§III-F).  :class:`TTLCache` reproduces the behaviour the system relies on:

* ``get`` / ``set`` with a per-entry time-to-live;
* bounded capacity with least-recently-used eviction;
* hit/miss/eviction statistics (used by the cache ablation benchmark);
* an injectable clock so tests can control expiry deterministically;
* optional *tags* on entries so groups of related keys can be invalidated
  together (the batch engine tags every cached Look Up result with its
  phonetic sound key, letting dictionary enrichment drop exactly the stale
  buckets instead of flushing the whole cache);
* thread safety — the batch engine serves Look Up / Normalization from
  worker threads while the crawler enriches the dictionary concurrently.

The :func:`cached` decorator wraps a function with a cache keyed on its
arguments — the API service layer uses it for bulk Look Up calls.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, TypeVar

from ..analysis.sanitizer import tracked_rlock
from ..errors import CacheError

T = TypeVar("T")

_MISSING = object()


@dataclass
class CacheStats:
    """Counters describing cache effectiveness."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    sets: int = 0

    @property
    def requests(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get`` calls served from cache (0 when unused)."""
        return self.hits / self.requests if self.requests else 0.0

    def to_dict(self) -> dict[str, float | int]:
        """Serialize the counters plus the derived hit rate."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "sets": self.sets,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    value: Any
    expires_at: float
    created_at: float = field(default=0.0)
    tags: tuple[Hashable, ...] = ()


class TTLCache:
    """Bounded key/value cache with per-entry TTL, LRU eviction and tags.

    Parameters
    ----------
    max_entries:
        Capacity; inserting beyond it evicts the least recently used entry.
    default_ttl:
        TTL in seconds applied when ``set`` is called without an explicit
        ``ttl``.
    clock:
        Callable returning the current time in seconds.  Defaults to
        :func:`time.monotonic`; tests inject a fake clock.

    All public operations are thread-safe: a single reentrant lock guards the
    entry map and the tag index (``get_or_compute`` releases it while running
    the compute callable so a slow miss never blocks other readers).
    """

    def __init__(
        self,
        max_entries: int = 4096,
        default_ttl: float = 300.0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if max_entries <= 0:
            raise CacheError(f"max_entries must be positive, got {max_entries}")
        if default_ttl <= 0:
            raise CacheError(f"default_ttl must be positive, got {default_ttl}")
        self.max_entries = max_entries
        self.default_ttl = default_ttl
        self._clock = clock or time.monotonic
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._tag_index: dict[Hashable, set[Hashable]] = {}
        self._lock = tracked_rlock("storage.cache")
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return self.get(key, default=_MISSING) is not _MISSING

    # ------------------------------------------------------------------ #
    def _unlink_tags(self, key: Hashable, entry: _Entry) -> None:
        for tag in entry.tags:
            keys = self._tag_index.get(tag)
            if keys is None:
                continue
            keys.discard(key)
            if not keys:
                del self._tag_index[tag]

    def _remove(self, key: Hashable) -> _Entry | None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._unlink_tags(key, entry)
        return entry

    def _purge_expired(self, now: float) -> None:
        doomed = [key for key, entry in self._entries.items() if entry.expires_at <= now]
        for key in doomed:
            self._remove(key)
            self.stats.expirations += 1

    def set(
        self,
        key: Hashable,
        value: Any,
        ttl: float | None = None,
        tags: Iterable[Hashable] = (),
    ) -> None:
        """Store ``value`` under ``key`` for ``ttl`` seconds (default TTL if omitted).

        ``tags`` associates the entry with invalidation groups; a later
        :meth:`invalidate_tag` on any of them drops the entry.
        """
        if ttl is not None and ttl <= 0:
            raise CacheError(f"ttl must be positive, got {ttl}")
        frozen_tags = tuple(tags)
        with self._lock:
            now = self._clock()
            self._purge_expired(now)
            lifetime = self.default_ttl if ttl is None else ttl
            if key in self._entries:
                self._remove(key)
            elif len(self._entries) >= self.max_entries:
                oldest_key, oldest_entry = self._entries.popitem(last=False)
                self._unlink_tags(oldest_key, oldest_entry)
                self.stats.evictions += 1
            self._entries[key] = _Entry(
                value=value, expires_at=now + lifetime, created_at=now, tags=frozen_tags
            )
            for tag in frozen_tags:
                self._tag_index.setdefault(tag, set()).add(key)
            self.stats.sets += 1

    def set_if(
        self,
        key: Hashable,
        value: Any,
        guard: Callable[[], bool],
        ttl: float | None = None,
        tags: Iterable[Hashable] = (),
    ) -> bool:
        """Store ``value`` only if ``guard()`` is true, atomically.

        The guard runs under the cache lock, so the check and the store
        cannot interleave with :meth:`invalidate_tag`.  With writers that
        bump an epoch *before* dropping tagged entries, a reader that
        captures the epoch, computes, then calls ``set_if`` with a
        ``guard`` comparing epochs can never leave a stale entry behind:
        either the guard sees the moved epoch and skips the store, or the
        store lands before the invalidation and is dropped by it.  Returns
        whether the value was stored.
        """
        with self._lock:
            if not guard():
                return False
            self.set(key, value, ttl=ttl, tags=tags)
            return True

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value or ``default``; counts a hit or a miss."""
        with self._lock:
            now = self._clock()
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return default
            if entry.expires_at <= now:
                self._remove(key)
                self.stats.expirations += 1
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.value

    def get_or_compute(
        self,
        key: Hashable,
        compute: Callable[[], T],
        ttl: float | None = None,
        tags: Iterable[Hashable] = (),
    ) -> T:
        """Return the cached value, computing and storing it on a miss.

        The compute callable runs outside the lock, so concurrent misses on
        the same key may compute twice; the last writer wins, which is safe
        for the pure queries this cache fronts.
        """
        value = self.get(key, default=_MISSING)
        if value is not _MISSING:
            return value
        computed = compute()
        self.set(key, computed, ttl=ttl, tags=tags)
        return computed

    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` if present; return whether something was removed."""
        with self._lock:
            return self._remove(key) is not None

    def invalidate_tag(self, tag: Hashable) -> int:
        """Drop every entry carrying ``tag``; returns how many were removed."""
        with self._lock:
            keys = self._tag_index.get(tag)
            if not keys:
                return 0
            doomed = list(keys)
            for key in doomed:
                self._remove(key)
            return len(doomed)

    def invalidate_tags(self, tags: Iterable[Hashable]) -> int:
        """Drop every entry carrying any of ``tags``; returns removals."""
        return sum(self.invalidate_tag(tag) for tag in set(tags))

    def invalidate_untagged(self) -> int:
        """Drop every entry that carries no tags; returns removals.

        Used by enrichment: tagged entries are invalidated precisely by sound
        key, while untagged entries (e.g. whole-response service caches whose
        dependencies are unknown) must be dropped conservatively.
        """
        with self._lock:
            doomed = [key for key, entry in self._entries.items() if not entry.tags]
            for key in doomed:
                self._remove(key)
            return len(doomed)

    def clear(self) -> None:
        """Drop every entry (statistics are preserved)."""
        with self._lock:
            self._entries.clear()
            self._tag_index.clear()

    def keys(self) -> tuple[Hashable, ...]:
        """Currently stored (possibly-expired-but-not-yet-purged) keys."""
        with self._lock:
            return tuple(self._entries)

    def tags(self) -> tuple[Hashable, ...]:
        """Tags currently attached to at least one live entry."""
        with self._lock:
            return tuple(self._tag_index)


def make_key(*args: Any, **kwargs: Any) -> Hashable:
    """Build a hashable cache key from call arguments.

    Lists/sets are converted to tuples; dictionaries to sorted item tuples.
    """

    def freeze(value: Any) -> Hashable:
        if isinstance(value, (list, tuple)):
            return tuple(freeze(item) for item in value)
        if isinstance(value, (set, frozenset)):
            return tuple(sorted(freeze(item) for item in value))
        if isinstance(value, dict):
            return tuple(sorted((key, freeze(val)) for key, val in value.items()))
        return value

    return (
        tuple(freeze(arg) for arg in args),
        tuple(sorted((name, freeze(value)) for name, value in kwargs.items())),
    )


def cached(
    cache: TTLCache, ttl: float | None = None
) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Decorator caching a function's results in ``cache``.

    The wrapped function gains a ``cache`` attribute pointing at the cache so
    callers can inspect statistics or invalidate entries.
    """

    def decorator(function: Callable[..., T]) -> Callable[..., T]:
        def wrapper(*args: Any, **kwargs: Any) -> T:
            key = (function.__qualname__, make_key(*args, **kwargs))
            return cache.get_or_compute(key, lambda: function(*args, **kwargs), ttl=ttl)

        wrapper.cache = cache  # type: ignore[attr-defined]
        wrapper.__name__ = function.__name__
        wrapper.__doc__ = function.__doc__
        wrapper.__qualname__ = function.__qualname__
        return wrapper

    return decorator
