"""Versioned warm-start snapshots: token documents plus frozen trie structures.

The compiled-matcher stack (PR 2/3) makes Look Up / Normalization fast only
*after* its tries are built; a process restart used to pay full Soundex
bucketing and trie compilation from scratch.  A snapshot captures everything
a warm engine needs in one on-disk artifact:

* the token **documents** of the dictionary collection (with their ``_id``\\ s,
  so the str(``_id``)-sorted bucket order every matcher relies on survives a
  reload byte for byte);
* the **trie families** — each distinct token sequence serialized once, with
  every trie variant it had materialized (see
  :meth:`repro.core.matcher.TrieFamily.to_payload`);
* the **bucket table** mapping each ``(phonetic_level, soundex_key)`` bucket
  to its family, which is how level-shared families are persisted without
  duplicating tries.

The on-disk layout is a two-line envelope — a small header object followed
by the body on its own line::

    {"checksum": "<crc32 of the body line>", "format_version": 1}
    {"buckets": [...], "documents": [...], "families": [...], ...}

Keeping the body on one raw line lets the checksum be computed over the
exact bytes on disk (one C-speed CRC pass) instead of re-serializing a
multi-megabyte object graph on every load.  :func:`read_snapshot` refuses
anything with the wrong format version, a
checksum mismatch, or a structurally malformed body by raising
:class:`~repro.errors.SnapshotError`; callers that asked for a graceful load
(the dictionary, the sharded index, the CLI/DB auto-hydrate) catch it and
fall back to recompilation, so a corrupt or stale snapshot can never take a
service down — it only costs the warm start.

This module deliberately knows nothing about the dictionary or the matcher:
it stores opaque family payloads, keeping the storage layer below the core
layer.  The save/load orchestration lives in
:meth:`repro.core.dictionary.PerturbationDictionary.save_snapshot` /
``load_snapshot`` and :meth:`repro.batch.sharded_index.ShardedPhoneticIndex.warm`.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import weakref
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from ..analysis.sanitizer import tracked_lock
from ..errors import PersistenceError, SnapshotError, TornWrite
from ..resilience.faults import FAULTS
from .persistence import write_bytes_atomic, write_text_atomic

#: Version of the on-disk snapshot envelope/body layout.  Bump whenever the
#: body structure or the trie node-row format changes; readers refuse other
#: versions and fall back to recompilation.
SNAPSHOT_FORMAT_VERSION = 1

#: Version of the sharded (v2) snapshot layout: a ``manifest.json`` envelope
#: plus ``shard-NN.bin`` flat offset-table files.  The v1 single-file format
#: stays readable forever; v2 readers refuse other v2 versions.
SNAPSHOT_V2_FORMAT_VERSION = 2

#: Conventional file name for a dictionary snapshot inside a ``--db`` /
#: ``config.snapshot_dir`` directory.
SNAPSHOT_FILE_NAME = "dictionary.snapshot.json"

#: Conventional directory name of the sharded v2 layout next to (instead of)
#: the v1 file, and the manifest inside it.
SNAPSHOT_DIR_SUFFIX = ".d"
SNAPSHOT_MANIFEST_NAME = "manifest.json"


def snapshot_checksum(body_text: str) -> str:
    """CRC-32 (hex) over the serialized body line exactly as stored."""
    return format(zlib.crc32(body_text.encode("utf-8")) & 0xFFFFFFFF, "08x")


def write_envelope(
    path: str | Path,
    body: Mapping[str, Any],
    version: int = SNAPSHOT_FORMAT_VERSION,
) -> Path:
    """Write ``body`` atomically inside the checksummed two-line envelope.

    The shared on-disk frame of every snapshot-family artifact (full
    snapshots, the WAL subsystem's delta snapshots, and the v2 manifest —
    which passes its own ``version``): one header line carrying the checksum
    and format version, one raw body line the checksum covers byte for byte.
    """
    try:
        body_text = json.dumps(
            body, ensure_ascii=False, sort_keys=True, separators=(",", ":")
        )
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"snapshot for {path} is not JSON-serializable: {exc}") from exc
    header = json.dumps(
        {"checksum": snapshot_checksum(body_text), "format_version": version},
        sort_keys=True,
    )
    text = header + "\n" + body_text + "\n"
    if FAULTS.armed:
        try:
            FAULTS.hit("snapshot.write")
        except TornWrite as fault:
            # Cooperative torn write: bypass the atomic rename and leave a
            # genuinely truncated envelope for checksum validation to catch.
            keep = fault.keep_bytes if fault.keep_bytes is not None else len(text) // 2
            keep = max(0, min(keep, len(text) - 1))
            Path(path).write_text(text[:keep], encoding="utf-8")
            raise SnapshotError(
                f"injected torn write: {keep} of {len(text)} bytes reached "
                f"{path} before the simulated crash"
            ) from fault
        except OSError as exc:
            raise SnapshotError(f"failed to write {path}: {exc}") from exc
    try:
        return write_text_atomic(path, text)
    except PersistenceError as exc:
        raise SnapshotError(str(exc)) from exc


def read_envelope(
    path: str | Path, version: int = SNAPSHOT_FORMAT_VERSION
) -> dict[str, Any]:
    """Read and validate a two-line envelope; returns the parsed body.

    Raises :class:`~repro.errors.SnapshotError` when the file is missing,
    unparseable, carries a format version other than ``version``, or fails
    its checksum.
    """
    source = Path(path)
    if not source.exists():
        raise SnapshotError(f"no such file: {source}")
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as exc:
        raise SnapshotError(f"failed to read {source}: {exc}") from exc
    header_text, separator, body_text = text.partition("\n")
    if not separator:
        raise SnapshotError(f"{source}: snapshot must be a two-line envelope")
    body_text = body_text.rstrip("\n")
    try:
        header = json.loads(header_text)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"{source}: invalid snapshot header: {exc}") from exc
    if not isinstance(header, Mapping):
        raise SnapshotError(f"{source}: snapshot header must be a JSON object")
    recorded_version = header.get("format_version")
    if recorded_version != version:
        raise SnapshotError(
            f"{source}: snapshot format version {recorded_version!r} is not "
            f"supported (expected {version})"
        )
    recorded = header.get("checksum")
    actual = snapshot_checksum(body_text)
    if recorded != actual:
        raise SnapshotError(
            f"{source}: checksum mismatch (recorded {recorded!r}, computed {actual!r})"
        )
    try:
        body = json.loads(body_text)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"{source}: invalid snapshot body: {exc}") from exc
    if not isinstance(body, dict):
        raise SnapshotError(f"{source}: snapshot body must be a JSON object")
    return body


@dataclass(frozen=True)
class Snapshot:
    """In-memory form of one warm-start snapshot.

    ``buckets`` rows are ``[phonetic_level, soundex_key, family_index]``
    triples (a list, not a mapping, so soundex keys never need escaping);
    ``family_index`` addresses :attr:`families`.
    """

    dictionary_version: int
    fingerprint: str
    config: Mapping[str, Any] = field(default_factory=dict)
    documents: tuple[Mapping[str, Any], ...] = ()
    families: tuple[Mapping[str, Any], ...] = ()
    buckets: tuple[tuple[int, str, int], ...] = ()
    #: Sequence number of the last change-log record this snapshot covers.
    #: Crash recovery replays only WAL records *after* this position; 0
    #: (the default, and what pre-WAL snapshots read back as) means
    #: "replay everything".
    wal_seq: int = 0

    @property
    def levels(self) -> tuple[int, ...]:
        """Phonetic levels with at least one bucket in the snapshot."""
        return tuple(sorted({level for level, _, _ in self.buckets}))

    def body(self) -> dict[str, Any]:
        """The checksummed payload written as the envelope's body line."""
        return {
            "dictionary_version": self.dictionary_version,
            "fingerprint": self.fingerprint,
            "config": dict(self.config),
            "documents": list(self.documents),
            "families": list(self.families),
            "buckets": [list(bucket) for bucket in self.buckets],
            "wal_seq": self.wal_seq,
        }

    @classmethod
    def from_body(cls, body: Mapping[str, Any]) -> "Snapshot":
        """Rebuild a snapshot from a parsed body; raises on malformed shape.

        Documents and families are kept by reference (the parsed JSON is
        owned by the loader, and a 10k-entry snapshot would pay dearly for
        ~16k defensive dict copies); per-row structure of families is
        validated lazily by the trie hydration.
        """
        try:
            buckets = tuple(
                (int(level), str(key), int(family_index))
                for level, key, family_index in body["buckets"]
            )
            documents = tuple(body["documents"])
            families = tuple(body["families"])
            snapshot = cls(
                dictionary_version=int(body["dictionary_version"]),
                fingerprint=str(body["fingerprint"]),
                config=dict(body.get("config", {})),
                documents=documents,
                families=families,
                buckets=buckets,
                wal_seq=int(body.get("wal_seq", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed snapshot body: {exc}") from exc
        # Parsed JSON objects are always plain dicts; concrete checks keep
        # this validation pass off the warm-start critical path.
        if not all(type(document) is dict for document in documents):
            raise SnapshotError("snapshot documents must be objects")
        if not all(type(family) is dict for family in families):
            raise SnapshotError("snapshot families must be objects")
        for level, key, family_index in snapshot.buckets:
            if not 0 <= family_index < len(families):
                raise SnapshotError(
                    f"bucket ({level}, {key!r}) references family "
                    f"{family_index} of {len(families)}"
                )
        return snapshot


def write_snapshot(path: str | Path, snapshot: Snapshot) -> Path:
    """Persist ``snapshot`` atomically; returns the path written."""
    return write_envelope(path, snapshot.body())


def read_snapshot(path: str | Path) -> Snapshot:
    """Load and validate a snapshot written by :func:`write_snapshot`.

    Raises :class:`~repro.errors.SnapshotError` when the file is missing,
    unparseable, carries a different format version, fails its checksum, or
    has a malformed body — every one of which graceful loaders treat as
    "no usable snapshot, recompile".  A delta-snapshot file (``kind`` marker
    in the body, see :mod:`repro.wal.delta`) is refused too: a delta is not
    loadable on its own, only through its chain.
    """
    body = read_envelope(path)
    kind = body.get("kind")
    if kind is not None and kind != "snapshot":
        raise SnapshotError(
            f"{path}: not a full snapshot (kind={kind!r}); deltas load only "
            f"through their chain"
        )
    return Snapshot.from_body(body)


def resolve_snapshot(
    source: "str | Path | Snapshot", strict: bool = True, mapped: bool = False
) -> Snapshot | None:
    """Normalize a path-or-snapshot argument to a :class:`Snapshot`.

    Shared by every ``from_snapshot=...`` entry point.  With ``strict``
    false, a :class:`SnapshotError` is swallowed and ``None`` returned so
    the caller can fall back to recompilation.

    A path resolves to the **v2 sharded layout** when its sibling
    ``*.d/manifest.json`` directory (or the directory itself, if ``source``
    points at one) is readable, falling back to the v1 single file — so
    callers keep passing the conventional ``dictionary.snapshot.json`` path
    regardless of which format the last save wrote.  With ``mapped`` true
    the v2 layout is opened through ``mmap`` with lazy trie materialization
    (see :func:`open_sharded_snapshot`); v1 files ignore the flag.
    """
    if isinstance(source, Snapshot):
        return source
    path = Path(source)
    try:
        if path.is_dir() and (path / SNAPSHOT_MANIFEST_NAME).is_file():
            shard_dir = path
        else:
            shard_dir = sharded_snapshot_dir(path)
        if (shard_dir / SNAPSHOT_MANIFEST_NAME).is_file():
            try:
                if mapped:
                    return open_sharded_snapshot(shard_dir).snapshot
                return read_sharded_snapshot(shard_dir)
            except SnapshotError:
                # A corrupt v2 layout degrades to the v1 file when one
                # exists beside it; otherwise the v2 error is the answer.
                if not path.is_file():
                    raise
        return read_snapshot(path)
    except SnapshotError:
        if strict:
            raise
        return None


# --------------------------------------------------------------------- #
# v2: sharded, memory-mappable layout
# --------------------------------------------------------------------- #
#
# A v2 snapshot is a directory (``dictionary.snapshot.d/`` by convention)
# holding one ``manifest.json`` — the familiar checksummed two-line envelope
# with ``format_version`` 2, carrying the snapshot's identity (fingerprint,
# version, config, wal_seq) and the shard table — plus N ``shard-NN.bin``
# files in a flat offset-table format:
#
#     magic "CTSNAP2\0" | u32 version | u32 record_count
#     u64 offsets[record_count]        (absolute file positions)
#     u64 lengths[record_count]
#     u32 crc32s[record_count]
#     records...                       (raw UTF-8 JSON blobs)
#
# Record 0 is the shard header: its documents (assigned by
# ``shard_of(str(_id))``), its bucket rows (assigned by ``shard_of(key)``,
# pointing at *global* family ids), the global ids of the family records
# that follow, and their token sequences.  Records 1..F are the family trie
# payloads — one record per family, which is the unit of lazy
# materialization: :func:`open_sharded_snapshot` maps the file and hands
# each family a loader that parses *only its own record* on first use, so a
# warm start touches the pages of the families it actually queries.
# Families referenced from buckets in several shards are duplicated into
# each (reads stay shard-local); the readers deduplicate by global id.


def shard_of(key: str, num_shards: int) -> int:
    """Stable shard assignment for a key (``crc32 % num_shards``).

    CRC-32 rather than ``hash()`` so the assignment survives
    ``PYTHONHASHSEED`` randomization across processes and restarts — the
    same property the batch layer's sharded phonetic index relies on (it
    imports this function), and what lets a v2 snapshot's shard files be
    warmed by the index shard that owns the same keys.
    """
    return zlib.crc32(key.encode("utf-8")) % num_shards


def sharded_snapshot_dir(path: str | Path) -> Path:
    """The v2 layout directory conventionally paired with a v1 path.

    ``dictionary.snapshot.json`` pairs with ``dictionary.snapshot.d/`` in
    the same directory; non-``.json`` names just gain the suffix.
    """
    base = Path(path)
    name = base.name
    if name.endswith(".json"):
        name = name[: -len(".json")]
    return base.with_name(name + SNAPSHOT_DIR_SUFFIX)


_SHARD_MAGIC = b"CTSNAP2\x00"
_SHARD_HEADER = struct.Struct("<8sII")


def _shard_file_name(index: int) -> str:
    return f"shard-{index:02d}.bin"


def _encode_record(payload: Mapping[str, Any]) -> bytes:
    try:
        return json.dumps(
            payload, ensure_ascii=False, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"shard record is not JSON-serializable: {exc}") from exc


def _pack_shard(records: "list[bytes]") -> bytes:
    count = len(records)
    cursor = _SHARD_HEADER.size + count * 20
    offsets: list[int] = []
    lengths: list[int] = []
    crcs: list[int] = []
    for blob in records:
        offsets.append(cursor)
        lengths.append(len(blob))
        crcs.append(zlib.crc32(blob) & 0xFFFFFFFF)
        cursor += len(blob)
    parts = [_SHARD_HEADER.pack(_SHARD_MAGIC, SNAPSHOT_V2_FORMAT_VERSION, count)]
    if count:
        parts.append(struct.pack(f"<{count}Q", *offsets))
        parts.append(struct.pack(f"<{count}Q", *lengths))
        parts.append(struct.pack(f"<{count}I", *crcs))
    parts.extend(records)
    return b"".join(parts)


class _ShardReader:
    """Parsed view over one shard file's buffer (``bytes`` or ``mmap``).

    Structural validation (magic, version, table bounds) happens here, at
    open; per-record CRC validation happens in :meth:`record_bytes`, which
    is what keeps a lazily mapped open O(header pages) while still catching
    corruption before any record is trusted.
    """

    __slots__ = (
        "source",
        "data",
        "record_count",
        "_offsets",
        "_lengths",
        "_crcs",
        "__weakref__",
    )

    def __init__(self, source: str, data) -> None:
        self.source = source
        self.data = data
        size = len(data)
        if size < _SHARD_HEADER.size:
            raise SnapshotError(f"{source}: shard file shorter than its header")
        magic, version, count = _SHARD_HEADER.unpack_from(data, 0)
        if magic != _SHARD_MAGIC:
            raise SnapshotError(f"{source}: not a snapshot shard file")
        if version != SNAPSHOT_V2_FORMAT_VERSION:
            raise SnapshotError(
                f"{source}: shard format version {version} is not supported "
                f"(expected {SNAPSHOT_V2_FORMAT_VERSION})"
            )
        table = _SHARD_HEADER.size
        if table + count * 20 > size:
            raise SnapshotError(f"{source}: shard record table exceeds the file")
        self.record_count = count
        self._offsets = struct.unpack_from(f"<{count}Q", data, table)
        self._lengths = struct.unpack_from(f"<{count}Q", data, table + 8 * count)
        self._crcs = struct.unpack_from(f"<{count}I", data, table + 16 * count)
        for offset, length in zip(self._offsets, self._lengths):
            if offset + length > size:
                raise SnapshotError(f"{source}: shard record exceeds the file")

    def record_bytes(self, index: int) -> bytes:
        offset = self._offsets[index]
        blob = bytes(self.data[offset : offset + self._lengths[index]])
        if zlib.crc32(blob) & 0xFFFFFFFF != self._crcs[index]:
            raise SnapshotError(f"{self.source}: record {index} failed its checksum")
        return blob

    def record(self, index: int) -> dict[str, Any]:
        try:
            payload = json.loads(self.record_bytes(index).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"{self.source}: record {index} is invalid: {exc}") from exc
        if not isinstance(payload, dict):
            raise SnapshotError(f"{self.source}: record {index} must be a JSON object")
        return payload


#: Process-wide cache of mapped shard readers, keyed by file identity
#: (realpath, size, mtime_ns).  Every follower hydrating the same snapshot
#: version receives the *same* reader — hence the same ``mmap`` object and
#: the same physical pages; the cache holds weak references so unmapping
#: happens when the last hydrated family lets go.
_MAPPED_SHARDS: "weakref.WeakValueDictionary[tuple[str, int, int], _ShardReader]" = (
    weakref.WeakValueDictionary()
)
_MAPPED_SHARDS_LOCK = tracked_lock("snapshot.mmap")


def _mapped_shard(path: Path, expected_bytes: int) -> _ShardReader:
    try:
        stat = path.stat()
    except OSError as exc:
        raise SnapshotError(f"no such shard file: {path}") from exc
    if expected_bytes >= 0 and stat.st_size != expected_bytes:
        raise SnapshotError(
            f"{path}: shard size {stat.st_size} does not match the manifest "
            f"({expected_bytes})"
        )
    cache_key = (os.path.realpath(path), stat.st_size, stat.st_mtime_ns)
    with _MAPPED_SHARDS_LOCK:
        reader = _MAPPED_SHARDS.get(cache_key)
        if reader is None:
            try:
                with open(path, "rb") as handle:
                    data = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except (OSError, ValueError) as exc:
                raise SnapshotError(f"failed to map {path}: {exc}") from exc
            reader = _ShardReader(str(path), data)
            _MAPPED_SHARDS[cache_key] = reader
    return reader


class LazyFamilyPayload(Mapping):
    """A family payload whose trie rows stay in the mapped shard file.

    Presents the :meth:`TrieFamily.to_payload` mapping shape (``tokens``
    eagerly, ``tries``/``deletes`` parsed from the shard record on demand)
    and exposes the ``lazy_tries`` loader attribute
    :meth:`repro.core.matcher.TrieFamily.from_payload` recognizes, so
    hydrating a mapped snapshot allocates tokens and nothing else.
    """

    __slots__ = ("_tokens", "_loader", "_record")

    def __init__(
        self, tokens, loader: "Callable[[], Mapping[str, Any]]"
    ) -> None:
        self._tokens = [str(token) for token in tokens]
        self._loader = loader
        self._record: "Mapping[str, Any] | None" = None

    @property
    def lazy_tries(self) -> "Callable[[], Mapping[str, Any]]":
        """The record loader (drained by the family on first trie use)."""
        return self._load

    def _load(self) -> Mapping[str, Any]:
        if self._record is None:
            record = self._loader()
            self._record = record if isinstance(record, Mapping) else {}
        return self._record

    def _keys(self) -> "list[str]":
        keys = ["tokens", "tries"]
        if "deletes" in self._load():
            keys.append("deletes")
        return keys

    def __getitem__(self, key: str):
        if key == "tokens":
            return self._tokens
        record = self._load()
        if key == "tries":
            return record.get("tries", {})
        if key == "deletes" and "deletes" in record:
            return record["deletes"]
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return iter(self._keys())

    def __len__(self) -> int:
        return len(self._keys())


@dataclass(frozen=True)
class MappedSnapshot:
    """A v2 snapshot opened read-only through ``mmap``.

    ``snapshot`` carries :class:`LazyFamilyPayload` families whose loaders
    keep the shard readers (and their maps) alive; ``shards`` exposes the
    readers for introspection — two processes-worth of followers in one
    process hydrate the *same* reader objects (see ``_MAPPED_SHARDS``),
    which is the page-sharing property the replication tests assert.
    """

    snapshot: Snapshot
    directory: str
    shards: tuple[_ShardReader, ...] = ()

    @property
    def mapped_bytes(self) -> int:
        return sum(len(reader.data) for reader in self.shards)


def write_sharded_snapshot(
    directory: str | Path, snapshot: Snapshot, num_shards: int
) -> Path:
    """Persist ``snapshot`` in the v2 sharded layout under ``directory``.

    Shard files are written first, the manifest last (atomically) — the
    manifest is the commit point, so a crash mid-save leaves either the old
    layout or the new one readable, never a torn hybrid.  Stale shard files
    from a previous (larger) shard count are removed after the manifest
    lands.  Returns the manifest path.
    """
    if num_shards < 1:
        raise SnapshotError(f"a sharded snapshot needs >= 1 shard, got {num_shards}")
    target = Path(directory)
    # Materialize lazy payloads (a re-save of a mapped snapshot) into plain
    # dicts; Mapping views serialize through dict().
    families = [dict(family) for family in snapshot.families]
    shard_documents: "list[list[Mapping[str, Any]]]" = [[] for _ in range(num_shards)]
    for document in snapshot.documents:
        shard_documents[shard_of(str(document.get("_id")), num_shards)].append(
            document
        )
    shard_buckets: "list[list[list]]" = [[] for _ in range(num_shards)]
    referenced: "list[set[int]]" = [set() for _ in range(num_shards)]
    for position, (level, key, family_index) in enumerate(snapshot.buckets):
        shard = shard_of(key, num_shards)
        # The leading position preserves the builder's bucket order across
        # the shard split, so a round trip reproduces the body byte for byte.
        shard_buckets[shard].append([position, level, key, family_index])
        referenced[shard].add(family_index)
    # A family no bucket references (possible after aggressive pruning)
    # still round-trips: park it on a deterministic shard.
    all_referenced = set().union(*referenced)
    for family_index in range(len(families)):
        if family_index not in all_referenced:
            referenced[family_index % num_shards].add(family_index)
    entries: "list[dict[str, Any]]" = []
    for index in range(num_shards):
        family_ids = sorted(referenced[index])
        header = {
            "documents": shard_documents[index],
            "buckets": shard_buckets[index],
            "families": family_ids,
            "tokens": [families[gid].get("tokens", []) for gid in family_ids],
        }
        records = [_encode_record(header)]
        for gid in family_ids:
            family = families[gid]
            record: "dict[str, Any]" = {"tries": family.get("tries", {})}
            if family.get("deletes"):
                record["deletes"] = family["deletes"]
            records.append(_encode_record(record))
        blob = _pack_shard(records)
        name = _shard_file_name(index)
        try:
            write_bytes_atomic(target / name, blob)
        except PersistenceError as exc:
            raise SnapshotError(str(exc)) from exc
        entries.append({"file": name, "bytes": len(blob), "records": len(records)})
    manifest = {
        "kind": "snapshot",
        "layout": "sharded",
        "shard_count": num_shards,
        "dictionary_version": snapshot.dictionary_version,
        "fingerprint": snapshot.fingerprint,
        "config": dict(snapshot.config),
        "wal_seq": snapshot.wal_seq,
        "families": len(families),
        "shards": entries,
    }
    manifest_path = write_envelope(
        target / SNAPSHOT_MANIFEST_NAME, manifest, version=SNAPSHOT_V2_FORMAT_VERSION
    )
    current = {entry["file"] for entry in entries}
    for stale in target.glob("shard-*.bin"):
        if stale.name not in current:
            try:
                stale.unlink()
            except OSError:  # lint: allow=swallowed-exception (best-effort GC)
                pass
    return manifest_path


def sharded_manifest_info(directory: str | Path) -> dict[str, Any]:
    """The validated manifest body of a v2 layout (identity + shard table).

    For callers that need metadata without loading any shard — compaction
    (to keep the shard width), the CLI ``snapshot --info`` view, and tests.
    """
    return _read_manifest(Path(directory))


def _read_manifest(directory: Path) -> dict[str, Any]:
    body = read_envelope(
        directory / SNAPSHOT_MANIFEST_NAME, version=SNAPSHOT_V2_FORMAT_VERSION
    )
    if body.get("kind") != "snapshot":
        raise SnapshotError(
            f"{directory}: not a sharded snapshot (kind={body.get('kind')!r})"
        )
    shards = body.get("shards")
    if not isinstance(shards, list) or not shards:
        raise SnapshotError(f"{directory}: manifest carries no shard table")
    return body


def _assemble_sharded(
    body: Mapping[str, Any], readers: "list[_ShardReader]", lazy: bool
) -> Snapshot:
    documents: "dict[str, Mapping[str, Any]]" = {}
    bucket_rows: "dict[int, tuple[int, str, int]]" = {}
    families_by_id: "dict[int, Mapping[str, Any]]" = {}
    try:
        for reader in readers:
            header = reader.record(0)
            family_ids = header["families"]
            tokens_rows = header["tokens"]
            if len(family_ids) != len(tokens_rows):
                raise SnapshotError(
                    f"{reader.source}: family id / token row count mismatch"
                )
            if reader.record_count != len(family_ids) + 1:
                raise SnapshotError(
                    f"{reader.source}: {reader.record_count} records for "
                    f"{len(family_ids)} families"
                )
            for document in header["documents"]:
                if type(document) is not dict:
                    raise SnapshotError(f"{reader.source}: documents must be objects")
                documents[str(document.get("_id"))] = document
            for position, level, key, family_index in header["buckets"]:
                bucket_rows[int(position)] = (int(level), str(key), int(family_index))
            for position, raw_id in enumerate(family_ids):
                gid = int(raw_id)
                if gid in families_by_id:
                    continue
                tokens = tokens_rows[position]
                if not isinstance(tokens, list):
                    raise SnapshotError(f"{reader.source}: token rows must be lists")
                if lazy:
                    families_by_id[gid] = LazyFamilyPayload(
                        tokens,
                        lambda reader=reader, index=position + 1: reader.record(index),
                    )
                else:
                    record = reader.record(position + 1)
                    family: "dict[str, Any]" = {
                        "tokens": tokens,
                        "tries": record.get("tries", {}),
                    }
                    if record.get("deletes"):
                        family["deletes"] = record["deletes"]
                    families_by_id[gid] = family
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed shard record: {exc}") from exc
    declared = body.get("families")
    if isinstance(declared, int) and declared != len(families_by_id):
        raise SnapshotError(
            f"manifest declares {declared} families, shards carry "
            f"{len(families_by_id)}"
        )
    ordered_ids = sorted(families_by_id)
    remap = {gid: position for position, gid in enumerate(ordered_ids)}
    for level, key, gid in bucket_rows.values():
        if gid not in remap:
            raise SnapshotError(
                f"bucket ({level}, {key!r}) references missing family {gid}"
            )
    try:
        return Snapshot(
            dictionary_version=int(body["dictionary_version"]),
            fingerprint=str(body["fingerprint"]),
            config=dict(body.get("config", {})),
            documents=tuple(documents[doc_id] for doc_id in sorted(documents)),
            families=tuple(families_by_id[gid] for gid in ordered_ids),
            buckets=tuple(
                (level, key, remap[gid])
                for _, (level, key, gid) in sorted(bucket_rows.items())
            ),
            wal_seq=int(body.get("wal_seq", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed sharded manifest: {exc}") from exc


def read_sharded_snapshot(directory: str | Path) -> Snapshot:
    """Eagerly load a v2 sharded snapshot (every record CRC-validated).

    The strict-validation counterpart of :func:`open_sharded_snapshot`,
    used wherever the full object graph is needed anyway — delta-chain
    merging, compaction, CLI inspection — and as the fallback when mapping
    is unavailable.
    """
    target = Path(directory)
    body = _read_manifest(target)
    readers: "list[_ShardReader]" = []
    for entry in body["shards"]:
        path = target / str(entry.get("file", ""))
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise SnapshotError(f"failed to read shard {path}: {exc}") from exc
        expected = entry.get("bytes")
        if isinstance(expected, int) and expected != len(data):
            raise SnapshotError(
                f"{path}: shard size {len(data)} does not match the manifest "
                f"({expected})"
            )
        reader = _ShardReader(str(path), data)
        for index in range(reader.record_count):
            reader.record_bytes(index)
        readers.append(reader)
    return _assemble_sharded(body, readers, lazy=False)


def open_sharded_snapshot(directory: str | Path) -> MappedSnapshot:
    """Open a v2 sharded snapshot read-only through ``mmap``.

    Only the manifest and each shard's header record are parsed now; every
    family's trie rows stay on disk until the family is first queried, so
    hydration cost is O(families) allocations plus the page faults of the
    records actually touched.  Readers come from a process-wide cache keyed
    by file identity — concurrent followers of one snapshot share maps
    (and physical pages) instead of private heap copies.
    """
    target = Path(directory)
    body = _read_manifest(target)
    readers: "list[_ShardReader]" = []
    for entry in body["shards"]:
        expected = entry.get("bytes")
        readers.append(
            _mapped_shard(
                target / str(entry.get("file", "")),
                expected if isinstance(expected, int) else -1,
            )
        )
    snapshot = _assemble_sharded(body, readers, lazy=True)
    return MappedSnapshot(
        snapshot=snapshot, directory=str(target), shards=tuple(readers)
    )
