"""Versioned warm-start snapshots: token documents plus frozen trie structures.

The compiled-matcher stack (PR 2/3) makes Look Up / Normalization fast only
*after* its tries are built; a process restart used to pay full Soundex
bucketing and trie compilation from scratch.  A snapshot captures everything
a warm engine needs in one on-disk artifact:

* the token **documents** of the dictionary collection (with their ``_id``\\ s,
  so the str(``_id``)-sorted bucket order every matcher relies on survives a
  reload byte for byte);
* the **trie families** — each distinct token sequence serialized once, with
  every trie variant it had materialized (see
  :meth:`repro.core.matcher.TrieFamily.to_payload`);
* the **bucket table** mapping each ``(phonetic_level, soundex_key)`` bucket
  to its family, which is how level-shared families are persisted without
  duplicating tries.

The on-disk layout is a two-line envelope — a small header object followed
by the body on its own line::

    {"checksum": "<crc32 of the body line>", "format_version": 1}
    {"buckets": [...], "documents": [...], "families": [...], ...}

Keeping the body on one raw line lets the checksum be computed over the
exact bytes on disk (one C-speed CRC pass) instead of re-serializing a
multi-megabyte object graph on every load.  :func:`read_snapshot` refuses
anything with the wrong format version, a
checksum mismatch, or a structurally malformed body by raising
:class:`~repro.errors.SnapshotError`; callers that asked for a graceful load
(the dictionary, the sharded index, the CLI/DB auto-hydrate) catch it and
fall back to recompilation, so a corrupt or stale snapshot can never take a
service down — it only costs the warm start.

This module deliberately knows nothing about the dictionary or the matcher:
it stores opaque family payloads, keeping the storage layer below the core
layer.  The save/load orchestration lives in
:meth:`repro.core.dictionary.PerturbationDictionary.save_snapshot` /
``load_snapshot`` and :meth:`repro.batch.sharded_index.ShardedPhoneticIndex.warm`.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..errors import PersistenceError, SnapshotError, TornWrite
from ..resilience.faults import FAULTS
from .persistence import write_text_atomic

#: Version of the on-disk snapshot envelope/body layout.  Bump whenever the
#: body structure or the trie node-row format changes; readers refuse other
#: versions and fall back to recompilation.
SNAPSHOT_FORMAT_VERSION = 1

#: Conventional file name for a dictionary snapshot inside a ``--db`` /
#: ``config.snapshot_dir`` directory.
SNAPSHOT_FILE_NAME = "dictionary.snapshot.json"


def snapshot_checksum(body_text: str) -> str:
    """CRC-32 (hex) over the serialized body line exactly as stored."""
    return format(zlib.crc32(body_text.encode("utf-8")) & 0xFFFFFFFF, "08x")


def write_envelope(path: str | Path, body: Mapping[str, Any]) -> Path:
    """Write ``body`` atomically inside the checksummed two-line envelope.

    The shared on-disk frame of every snapshot-family artifact (full
    snapshots and the WAL subsystem's delta snapshots): one header line
    carrying the checksum and format version, one raw body line the
    checksum covers byte for byte.
    """
    try:
        body_text = json.dumps(
            body, ensure_ascii=False, sort_keys=True, separators=(",", ":")
        )
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"snapshot for {path} is not JSON-serializable: {exc}") from exc
    header = json.dumps(
        {"checksum": snapshot_checksum(body_text), "format_version": SNAPSHOT_FORMAT_VERSION},
        sort_keys=True,
    )
    text = header + "\n" + body_text + "\n"
    if FAULTS.armed:
        try:
            FAULTS.hit("snapshot.write")
        except TornWrite as fault:
            # Cooperative torn write: bypass the atomic rename and leave a
            # genuinely truncated envelope for checksum validation to catch.
            keep = fault.keep_bytes if fault.keep_bytes is not None else len(text) // 2
            keep = max(0, min(keep, len(text) - 1))
            Path(path).write_text(text[:keep], encoding="utf-8")
            raise SnapshotError(
                f"injected torn write: {keep} of {len(text)} bytes reached "
                f"{path} before the simulated crash"
            ) from fault
        except OSError as exc:
            raise SnapshotError(f"failed to write {path}: {exc}") from exc
    try:
        return write_text_atomic(path, text)
    except PersistenceError as exc:
        raise SnapshotError(str(exc)) from exc


def read_envelope(path: str | Path) -> dict[str, Any]:
    """Read and validate a two-line envelope; returns the parsed body.

    Raises :class:`~repro.errors.SnapshotError` when the file is missing,
    unparseable, carries a different format version, or fails its checksum.
    """
    source = Path(path)
    if not source.exists():
        raise SnapshotError(f"no such file: {source}")
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as exc:
        raise SnapshotError(f"failed to read {source}: {exc}") from exc
    header_text, separator, body_text = text.partition("\n")
    if not separator:
        raise SnapshotError(f"{source}: snapshot must be a two-line envelope")
    body_text = body_text.rstrip("\n")
    try:
        header = json.loads(header_text)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"{source}: invalid snapshot header: {exc}") from exc
    if not isinstance(header, Mapping):
        raise SnapshotError(f"{source}: snapshot header must be a JSON object")
    version = header.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"{source}: snapshot format version {version!r} is not supported "
            f"(expected {SNAPSHOT_FORMAT_VERSION})"
        )
    recorded = header.get("checksum")
    actual = snapshot_checksum(body_text)
    if recorded != actual:
        raise SnapshotError(
            f"{source}: checksum mismatch (recorded {recorded!r}, computed {actual!r})"
        )
    try:
        body = json.loads(body_text)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"{source}: invalid snapshot body: {exc}") from exc
    if not isinstance(body, dict):
        raise SnapshotError(f"{source}: snapshot body must be a JSON object")
    return body


@dataclass(frozen=True)
class Snapshot:
    """In-memory form of one warm-start snapshot.

    ``buckets`` rows are ``[phonetic_level, soundex_key, family_index]``
    triples (a list, not a mapping, so soundex keys never need escaping);
    ``family_index`` addresses :attr:`families`.
    """

    dictionary_version: int
    fingerprint: str
    config: Mapping[str, Any] = field(default_factory=dict)
    documents: tuple[Mapping[str, Any], ...] = ()
    families: tuple[Mapping[str, Any], ...] = ()
    buckets: tuple[tuple[int, str, int], ...] = ()
    #: Sequence number of the last change-log record this snapshot covers.
    #: Crash recovery replays only WAL records *after* this position; 0
    #: (the default, and what pre-WAL snapshots read back as) means
    #: "replay everything".
    wal_seq: int = 0

    @property
    def levels(self) -> tuple[int, ...]:
        """Phonetic levels with at least one bucket in the snapshot."""
        return tuple(sorted({level for level, _, _ in self.buckets}))

    def body(self) -> dict[str, Any]:
        """The checksummed payload written as the envelope's body line."""
        return {
            "dictionary_version": self.dictionary_version,
            "fingerprint": self.fingerprint,
            "config": dict(self.config),
            "documents": list(self.documents),
            "families": list(self.families),
            "buckets": [list(bucket) for bucket in self.buckets],
            "wal_seq": self.wal_seq,
        }

    @classmethod
    def from_body(cls, body: Mapping[str, Any]) -> "Snapshot":
        """Rebuild a snapshot from a parsed body; raises on malformed shape.

        Documents and families are kept by reference (the parsed JSON is
        owned by the loader, and a 10k-entry snapshot would pay dearly for
        ~16k defensive dict copies); per-row structure of families is
        validated lazily by the trie hydration.
        """
        try:
            buckets = tuple(
                (int(level), str(key), int(family_index))
                for level, key, family_index in body["buckets"]
            )
            documents = tuple(body["documents"])
            families = tuple(body["families"])
            snapshot = cls(
                dictionary_version=int(body["dictionary_version"]),
                fingerprint=str(body["fingerprint"]),
                config=dict(body.get("config", {})),
                documents=documents,
                families=families,
                buckets=buckets,
                wal_seq=int(body.get("wal_seq", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed snapshot body: {exc}") from exc
        # Parsed JSON objects are always plain dicts; concrete checks keep
        # this validation pass off the warm-start critical path.
        if not all(type(document) is dict for document in documents):
            raise SnapshotError("snapshot documents must be objects")
        if not all(type(family) is dict for family in families):
            raise SnapshotError("snapshot families must be objects")
        for level, key, family_index in snapshot.buckets:
            if not 0 <= family_index < len(families):
                raise SnapshotError(
                    f"bucket ({level}, {key!r}) references family "
                    f"{family_index} of {len(families)}"
                )
        return snapshot


def write_snapshot(path: str | Path, snapshot: Snapshot) -> Path:
    """Persist ``snapshot`` atomically; returns the path written."""
    return write_envelope(path, snapshot.body())


def read_snapshot(path: str | Path) -> Snapshot:
    """Load and validate a snapshot written by :func:`write_snapshot`.

    Raises :class:`~repro.errors.SnapshotError` when the file is missing,
    unparseable, carries a different format version, fails its checksum, or
    has a malformed body — every one of which graceful loaders treat as
    "no usable snapshot, recompile".  A delta-snapshot file (``kind`` marker
    in the body, see :mod:`repro.wal.delta`) is refused too: a delta is not
    loadable on its own, only through its chain.
    """
    body = read_envelope(path)
    kind = body.get("kind")
    if kind is not None and kind != "snapshot":
        raise SnapshotError(
            f"{path}: not a full snapshot (kind={kind!r}); deltas load only "
            f"through their chain"
        )
    return Snapshot.from_body(body)


def resolve_snapshot(
    source: "str | Path | Snapshot", strict: bool = True
) -> Snapshot | None:
    """Normalize a path-or-snapshot argument to a :class:`Snapshot`.

    Shared by every ``from_snapshot=...`` entry point.  With ``strict``
    false, a :class:`SnapshotError` is swallowed and ``None`` returned so
    the caller can fall back to recompilation.
    """
    if isinstance(source, Snapshot):
        return source
    try:
        return read_snapshot(source)
    except SnapshotError:
        if strict:
            raise
        return None
