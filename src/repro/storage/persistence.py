"""JSONL persistence for document collections.

The original CrypText keeps its dictionary in MongoDB, which persists to
disk; this reproduction persists collections as JSON-lines files so a
dictionary built from a large crawl can be saved once and reloaded quickly
by examples, tests, and benchmarks.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable

from ..errors import PersistenceError
from .document_store import Collection, DocumentStore


def write_text_atomic(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    The dump/load hook shared by collection dumps and warm-start snapshots:
    a crash mid-write leaves either the old file or the new one on disk,
    never a truncated hybrid — which is what lets snapshot loading treat
    "unparseable" strictly as corruption rather than a normal race.
    Parent directories are created as needed.
    """
    target = Path(path)
    scratch = target.with_name(target.name + ".tmp")
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        scratch.write_text(text, encoding="utf-8")
        os.replace(scratch, target)
    except OSError as exc:
        try:
            scratch.unlink()
        except OSError:
            pass
        raise PersistenceError(f"failed to write {target}: {exc}") from exc
    return target


def write_bytes_atomic(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp file + rename).

    The binary sibling of :func:`write_text_atomic`, used by the sharded
    snapshot layout's shard files.
    """
    target = Path(path)
    scratch = target.with_name(target.name + ".tmp")
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        scratch.write_bytes(data)
        os.replace(scratch, target)
    except OSError as exc:
        try:
            scratch.unlink()
        except OSError:
            pass
        raise PersistenceError(f"failed to write {target}: {exc}") from exc
    return target


def write_json_atomic(path: str | Path, payload: Any) -> Path:
    """Serialize ``payload`` as JSON and write it atomically to ``path``."""
    try:
        text = json.dumps(payload, ensure_ascii=False, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise PersistenceError(f"payload for {path} is not JSON-serializable: {exc}") from exc
    return write_text_atomic(path, text)


def read_json(path: str | Path) -> Any:
    """Read one JSON document from ``path`` (the snapshot load hook)."""
    source = Path(path)
    if not source.exists():
        raise PersistenceError(f"no such file: {source}")
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as exc:
        raise PersistenceError(f"failed to read {source}: {exc}") from exc
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"{source}: invalid JSON: {exc}") from exc


def dump_collection(collection: Collection, path: str | Path) -> int:
    """Write every document of ``collection`` to ``path`` as JSON lines.

    Returns the number of documents written.  Parent directories are created
    as needed; the file is written atomically (temp file + rename) so a
    crash mid-dump cannot truncate a previously good dump.
    """
    target = Path(path)
    try:
        lines = []
        for document in collection:
            lines.append(json.dumps(document, ensure_ascii=False, sort_keys=True))
        lines.append("")
        write_text_atomic(target, "\n".join(lines))
        return len(lines) - 1
    except (TypeError, ValueError) as exc:
        raise PersistenceError(
            f"failed to dump collection {collection.name!r} to {target}: {exc}"
        ) from exc


def load_collection(
    collection: Collection, path: str | Path, clear: bool = True
) -> int:
    """Load JSON-lines documents from ``path`` into ``collection``.

    Parameters
    ----------
    collection:
        Target collection (its indexes are refreshed automatically by the
        inserts).
    path:
        JSONL file produced by :func:`dump_collection`.
    clear:
        Empty the collection first (default) so the load is a replacement
        rather than a merge.

    Returns the number of documents loaded.
    """
    source = Path(path)
    if not source.exists():
        raise PersistenceError(f"no such file: {source}")
    documents: list[dict[str, Any]] = []
    try:
        with source.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    document = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise PersistenceError(
                        f"{source}:{line_number}: invalid JSON: {exc}"
                    ) from exc
                if not isinstance(document, dict):
                    raise PersistenceError(
                        f"{source}:{line_number}: expected an object, got "
                        f"{type(document).__name__}"
                    )
                documents.append(document)
    except OSError as exc:
        raise PersistenceError(f"failed to read {source}: {exc}") from exc
    if clear:
        collection.clear()
    # The parsed documents are owned by this call — adopt them by reference
    # (one locked pass, no per-document deepcopy).
    return collection.load_documents(documents, copy=False)


def dump_store(store: DocumentStore, directory: str | Path) -> dict[str, int]:
    """Dump every collection of ``store`` into ``directory`` (one JSONL each)."""
    base = Path(directory)
    written: dict[str, int] = {}
    for name in store.collection_names():
        written[name] = dump_collection(store.collection(name), base / f"{name}.jsonl")
    return written


def load_store(store: DocumentStore, directory: str | Path) -> dict[str, int]:
    """Load every ``*.jsonl`` file in ``directory`` into ``store``."""
    base = Path(directory)
    if not base.is_dir():
        raise PersistenceError(f"no such directory: {base}")
    loaded: dict[str, int] = {}
    for path in sorted(base.glob("*.jsonl")):
        loaded[path.stem] = load_collection(store.collection(path.stem), path)
    return loaded


def iter_jsonl(path: str | Path) -> Iterable[dict[str, Any]]:
    """Yield documents from a JSONL file without touching a collection."""
    source = Path(path)
    if not source.exists():
        raise PersistenceError(f"no such file: {source}")
    with source.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
