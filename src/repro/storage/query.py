"""Mongo-style filter documents.

The document store accepts filters expressed as plain dictionaries, following
the subset of MongoDB's query language that CrypText's collections need:

* equality: ``{"token": "democrats"}``
* comparison operators: ``$eq``, ``$ne``, ``$gt``, ``$gte``, ``$lt``, ``$lte``
* membership: ``$in``, ``$nin``
* existence: ``$exists``
* substring / regex: ``$contains``, ``$regex``
* set containment for array fields: ``$all``, ``$elem``
* boolean composition: ``$and``, ``$or``, ``$not`` at the top level

A filter is *compiled* once into a predicate function so that scans over a
collection do not re-interpret the dictionary per document.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Mapping, Sequence

from ..errors import QueryError

Predicate = Callable[[Mapping[str, Any]], bool]

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "$eq": lambda value, target: value == target,
    "$ne": lambda value, target: value != target,
    "$gt": lambda value, target: value is not None and value > target,
    "$gte": lambda value, target: value is not None and value >= target,
    "$lt": lambda value, target: value is not None and value < target,
    "$lte": lambda value, target: value is not None and value <= target,
}


def _get_path(document: Mapping[str, Any], path: str) -> tuple[bool, Any]:
    """Resolve a dotted field path; return ``(exists, value)``."""
    current: Any = document
    for part in path.split("."):
        if isinstance(current, Mapping) and part in current:
            current = current[part]
        else:
            return False, None
    return True, current


def _compile_condition(path: str, condition: Any) -> Predicate:
    """Compile a single field condition into a predicate."""
    if not isinstance(condition, Mapping):
        target = condition

        def equality(document: Mapping[str, Any], path=path, target=target) -> bool:
            exists, value = _get_path(document, path)
            return exists and value == target

        return equality

    clauses: list[Predicate] = []
    for operator, target in condition.items():
        if operator in _COMPARATORS:
            comparator = _COMPARATORS[operator]

            def compare(
                document: Mapping[str, Any],
                path=path,
                target=target,
                comparator=comparator,
            ) -> bool:
                exists, value = _get_path(document, path)
                if not exists:
                    return False
                try:
                    return comparator(value, target)
                except TypeError:
                    return False

            clauses.append(compare)
        elif operator == "$in":
            if not isinstance(target, (list, tuple, set, frozenset)):
                raise QueryError("$in expects a sequence of values")
            allowed = set(target)

            def member(document: Mapping[str, Any], path=path, allowed=allowed) -> bool:
                exists, value = _get_path(document, path)
                if not exists:
                    return False
                # MongoDB semantics: for array-valued fields, $in matches when
                # any element of the array is in the allowed set.
                if isinstance(value, (list, tuple, set, frozenset)):
                    return any(item in allowed for item in value)
                return value in allowed

            clauses.append(member)
        elif operator == "$nin":
            if not isinstance(target, (list, tuple, set, frozenset)):
                raise QueryError("$nin expects a sequence of values")
            banned = set(target)

            def not_member(document: Mapping[str, Any], path=path, banned=banned) -> bool:
                exists, value = _get_path(document, path)
                if not exists:
                    return True
                if isinstance(value, (list, tuple, set, frozenset)):
                    return not any(item in banned for item in value)
                return value not in banned

            clauses.append(not_member)
        elif operator == "$exists":
            expected = bool(target)

            def exists_clause(
                document: Mapping[str, Any], path=path, expected=expected
            ) -> bool:
                exists, _ = _get_path(document, path)
                return exists is expected

            clauses.append(exists_clause)
        elif operator == "$contains":
            needle = str(target)

            def contains(document: Mapping[str, Any], path=path, needle=needle) -> bool:
                exists, value = _get_path(document, path)
                return exists and isinstance(value, str) and needle in value

            clauses.append(contains)
        elif operator == "$regex":
            try:
                pattern = re.compile(str(target))
            except re.error as exc:
                raise QueryError(f"invalid $regex pattern: {exc}") from exc

            def regex(document: Mapping[str, Any], path=path, pattern=pattern) -> bool:
                exists, value = _get_path(document, path)
                return exists and isinstance(value, str) and bool(pattern.search(value))

            clauses.append(regex)
        elif operator == "$all":
            if not isinstance(target, (list, tuple, set, frozenset)):
                raise QueryError("$all expects a sequence of values")
            required = set(target)

            def contains_all(
                document: Mapping[str, Any], path=path, required=required
            ) -> bool:
                exists, value = _get_path(document, path)
                if not exists or not isinstance(value, (list, tuple, set, frozenset)):
                    return False
                return required.issubset(set(value))

            clauses.append(contains_all)
        elif operator == "$elem":
            element = target

            def contains_element(
                document: Mapping[str, Any], path=path, element=element
            ) -> bool:
                exists, value = _get_path(document, path)
                if not exists or not isinstance(value, (list, tuple, set, frozenset)):
                    return False
                return element in value

            clauses.append(contains_element)
        elif operator == "$not":
            inner = _compile_condition(path, target)
            clauses.append(lambda document, inner=inner: not inner(document))
        else:
            raise QueryError(f"unsupported query operator: {operator!r}")

    def all_clauses(document: Mapping[str, Any], clauses=tuple(clauses)) -> bool:
        return all(clause(document) for clause in clauses)

    return all_clauses


def compile_filter(filter_document: Mapping[str, Any] | None) -> Predicate:
    """Compile ``filter_document`` into a predicate over documents.

    ``None`` or an empty mapping compiles to a predicate that accepts every
    document (a full collection scan).

    Raises
    ------
    QueryError
        If the filter uses an unsupported operator or malformed operands.
    """
    if not filter_document:
        return lambda _document: True
    if not isinstance(filter_document, Mapping):
        raise QueryError(
            f"filter must be a mapping, got {type(filter_document).__name__}"
        )

    predicates: list[Predicate] = []
    for key, condition in filter_document.items():
        if key == "$and":
            sub = _compile_boolean_list(condition, "$and")
            predicates.append(
                lambda document, sub=sub: all(pred(document) for pred in sub)
            )
        elif key == "$or":
            sub = _compile_boolean_list(condition, "$or")
            predicates.append(
                lambda document, sub=sub: any(pred(document) for pred in sub)
            )
        elif key == "$not":
            inner = compile_filter(condition)
            predicates.append(lambda document, inner=inner: not inner(document))
        elif key.startswith("$"):
            raise QueryError(f"unsupported top-level operator: {key!r}")
        else:
            predicates.append(_compile_condition(key, condition))

    def conjunction(document: Mapping[str, Any], predicates=tuple(predicates)) -> bool:
        return all(predicate(document) for predicate in predicates)

    return conjunction


def _compile_boolean_list(conditions: Any, name: str) -> tuple[Predicate, ...]:
    if not isinstance(conditions, Sequence) or isinstance(conditions, (str, bytes)):
        raise QueryError(f"{name} expects a list of filter documents")
    return tuple(compile_filter(condition) for condition in conditions)


def matches_filter(document: Mapping[str, Any], filter_document: Mapping[str, Any] | None) -> bool:
    """One-shot convenience: does ``document`` match ``filter_document``?"""
    return compile_filter(filter_document)(document)
