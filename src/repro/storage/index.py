"""Secondary hash indexes for document collections.

CrypText's hot queries are exact-match lookups: "all dictionary entries whose
Soundex key is ``RE4425``", "all posts containing token ``vaccine``".  A hash
index over a single field turns those from full scans into dictionary
lookups, mirroring the secondary indexes the original MongoDB deployment
would declare.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Hashable, Iterable, Mapping

from ..errors import StorageError


def _freeze(value: Any) -> Hashable:
    """Convert an indexed value into something hashable.

    Lists become tuples so that array-valued fields can still be indexed by
    their exact content; dictionaries are rejected (index a scalar field
    instead).
    """
    # Scalar fast path: almost every indexed value is a string (tokens,
    # Soundex keys) or a bool/int — skip the container isinstance ladder.
    kind = type(value)
    if kind is str or kind is bool or kind is int or kind is float or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze(item) for item in value))
    if isinstance(value, dict):
        raise StorageError("cannot index a mapping-valued field")
    return value


class HashIndex:
    """Equality index over one field of a collection.

    Parameters
    ----------
    field:
        Field name (dotted paths are supported).
    multi:
        If ``True`` and the field holds a list, each element is indexed
        individually (a "multikey" index) — used for the posts collection's
        ``tokens`` field so containment queries are fast.
    """

    def __init__(self, field: str, multi: bool = False) -> None:
        self.field = field
        self.multi = multi
        self._field_parts = tuple(field.split("."))
        self._buckets: dict[Hashable, set[Any]] = defaultdict(set)
        self._entries: dict[Any, tuple[Hashable, ...]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _extract(self, document: Mapping[str, Any]) -> tuple[Hashable, ...]:
        current: Any = document
        # Runs once per index per write — the bulk-load hot loop.  Concrete
        # dict checks here: an ``isinstance(..., typing.Mapping)`` costs a
        # cached-but-slow ABC dispatch, which dominated warm-start loads.
        for part in self._field_parts:
            if isinstance(current, dict):
                if part in current:
                    current = current[part]
                    continue
                return ()
            # Rare path: a caller stored a non-dict Mapping (e.g. a
            # MappingProxyType) — still index it correctly.
            if isinstance(current, Mapping) and part in current:
                current = current[part]
            else:
                return ()
        if self.multi and isinstance(current, (list, tuple, set, frozenset)):
            return tuple(_freeze(item) for item in current)
        return (_freeze(current),)

    def add(self, doc_id: Any, document: Mapping[str, Any]) -> None:
        """Index ``document`` under ``doc_id`` (replacing any prior entry)."""
        if doc_id in self._entries:
            self.remove(doc_id)
        keys = self._extract(document)
        for key in keys:
            self._buckets[key].add(doc_id)
        self._entries[doc_id] = keys

    def remove(self, doc_id: Any) -> None:
        """Remove ``doc_id`` from the index (no-op if absent)."""
        keys = self._entries.pop(doc_id, ())
        for key in keys:
            bucket = self._buckets.get(key)
            if bucket is None:
                continue
            bucket.discard(doc_id)
            if not bucket:
                del self._buckets[key]

    def lookup(self, value: Any) -> frozenset[Any]:
        """Return the ids of documents whose field equals ``value``."""
        return frozenset(self._buckets.get(_freeze(value), frozenset()))

    def lookup_many(self, values: Iterable[Any]) -> frozenset[Any]:
        """Return ids of documents whose field equals any of ``values``."""
        result: set[Any] = set()
        for value in values:
            result.update(self._buckets.get(_freeze(value), ()))
        return frozenset(result)

    def keys(self) -> frozenset[Hashable]:
        """Distinct indexed values."""
        return frozenset(self._buckets)

    def clear(self) -> None:
        """Drop every entry."""
        self._buckets.clear()
        self._entries.clear()
